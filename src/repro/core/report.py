"""Verification reports, rendered in the style of Appendix C.

Each hop check produces a :class:`HopReport` carrying evidence *items* —
why rules mismatched (``MatchRemoteAsNum(58552)``), what was missing
(``UnrecordedAsSet("AS1299:AS-TWELVE99-CUSTOMER-V4")``), or which special
case fired (``SpecUphill``).  ``str()`` on a report reproduces the paper's
printout format, e.g.::

    MehExport { from: 56239, to: 133840, items: [MatchRemoteAsNum(55685),
        MatchFilterAsNum(56239, NoOp), MatchFilter, SpecUphill] }
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.bgp.table import RouteEntry
from repro.core.status import SpecialCase, UnrecordedReason, VerifyStatus
from repro.net.prefix import RangeOp, RangeOpKind

__all__ = ["ItemKind", "ReportItem", "HopReport", "RouteReport"]


class ItemKind(Enum):
    """The kinds of evidence items a hop report can carry."""

    MATCH_REMOTE_AS_NUM = "MatchRemoteAsNum"
    MATCH_REMOTE_AS_SET = "MatchRemoteAsSet"
    MATCH_REMOTE_ANY = "MatchRemoteAny"
    MATCH_FILTER = "MatchFilter"
    MATCH_FILTER_AS_NUM = "MatchFilterAsNum"
    MATCH_FILTER_AS_SET = "MatchFilterAsSet"
    MATCH_FILTER_ROUTE_SET = "MatchFilterRouteSet"
    MATCH_FILTER_PREFIXES = "MatchFilterPrefixes"
    MATCH_FILTER_AS_PATH = "MatchFilterAsPath"
    UNRECORDED_AUT_NUM = "UnrecordedAutNum"
    UNRECORDED_NO_RULES = "UnrecordedNoRules"
    UNRECORDED_AS_SET = "UnrecordedAsSet"
    UNRECORDED_ROUTE_SET = "UnrecordedRouteSet"
    UNRECORDED_PEERING_SET = "UnrecordedPeeringSet"
    UNRECORDED_FILTER_SET = "UnrecordedFilterSet"
    UNRECORDED_AS_ROUTES = "UnrecordedAsRoutes"
    SKIPPED_REGEX_RANGE = "SkipAsPathRegexAsnRange"
    SKIPPED_REGEX_TILDE = "SkipAsPathRegexSamePattern"
    SKIPPED_COMMUNITY = "SkipCommunityFilter"
    SKIPPED_BAD_RULE = "SkipUnparsedRule"
    SPEC_EXPORT_SELF = "SpecExportSelf"
    SPEC_IMPORT_CUSTOMER = "SpecImportCustomer"
    SPEC_MISSING_ROUTES = "SpecMissingRoutes"
    SPEC_OTHER_ONLY_PROVIDER_POLICIES = "SpecOtherOnlyProviderPolicies"
    SPEC_CUSTOMER_ONLY_PROVIDER_POLICIES = "SpecCustomerOnlyProviderPolicies"
    SPEC_TIER1_PAIR = "SpecTier1Pair"
    SPEC_UPHILL = "SpecUphill"


_SPECIAL_ITEMS = {
    ItemKind.SPEC_EXPORT_SELF: SpecialCase.EXPORT_SELF,
    ItemKind.SPEC_IMPORT_CUSTOMER: SpecialCase.IMPORT_CUSTOMER,
    ItemKind.SPEC_MISSING_ROUTES: SpecialCase.MISSING_ROUTES,
    ItemKind.SPEC_OTHER_ONLY_PROVIDER_POLICIES: SpecialCase.ONLY_PROVIDER_POLICIES,
    ItemKind.SPEC_CUSTOMER_ONLY_PROVIDER_POLICIES: SpecialCase.ONLY_PROVIDER_POLICIES,
    ItemKind.SPEC_TIER1_PAIR: SpecialCase.TIER1_PAIR,
    ItemKind.SPEC_UPHILL: SpecialCase.UPHILL,
}

_UNRECORDED_ITEMS = {
    ItemKind.UNRECORDED_AUT_NUM: UnrecordedReason.NO_AUT_NUM,
    ItemKind.UNRECORDED_NO_RULES: UnrecordedReason.NO_RULES,
    ItemKind.UNRECORDED_AS_ROUTES: UnrecordedReason.ZERO_ROUTE_AS,
    ItemKind.UNRECORDED_AS_SET: UnrecordedReason.MISSING_SET,
    ItemKind.UNRECORDED_ROUTE_SET: UnrecordedReason.MISSING_SET,
    ItemKind.UNRECORDED_PEERING_SET: UnrecordedReason.MISSING_SET,
    ItemKind.UNRECORDED_FILTER_SET: UnrecordedReason.MISSING_SET,
}


def _op_label(op: RangeOp | None) -> str | None:
    if op is None:
        return None
    if op.kind is RangeOpKind.NONE:
        return "NoOp"
    return str(op)


@dataclass(frozen=True, slots=True)
class ReportItem:
    """One evidence item: kind plus an optional ASN / name / operator."""

    kind: ItemKind
    asn: int | None = None
    name: str | None = None
    op: str | None = None

    @staticmethod
    def of(
        kind: ItemKind,
        asn: int | None = None,
        name: str | None = None,
        op: RangeOp | None = None,
    ) -> "ReportItem":
        """Build an item, normalizing the range-operator label."""
        return ReportItem(kind, asn, name, _op_label(op))

    @property
    def special_case(self) -> SpecialCase | None:
        """The special case this item encodes, if any."""
        return _SPECIAL_ITEMS.get(self.kind)

    @property
    def unrecorded_reason(self) -> UnrecordedReason | None:
        """The unrecorded sub-reason this item encodes, if any."""
        return _UNRECORDED_ITEMS.get(self.kind)

    def __str__(self) -> str:
        arguments = []
        if self.asn is not None:
            arguments.append(str(self.asn))
        if self.name is not None:
            arguments.append(f'"{self.name}"')
        if self.op is not None:
            arguments.append(self.op)
        if arguments:
            return f"{self.kind.value}({', '.join(arguments)})"
        return self.kind.value


_STATUS_WORD = {
    VerifyStatus.VERIFIED: "Ok",
    VerifyStatus.SKIP: "Skip",
    VerifyStatus.UNRECORDED: "Unrec",
    VerifyStatus.RELAXED: "Meh",
    VerifyStatus.SAFELISTED: "Meh",
    VerifyStatus.UNVERIFIED: "Bad",
}


@dataclass(frozen=True, slots=True)
class HopReport:
    """Verification result for one direction of one inter-AS hop.

    For an export, ``from_asn`` announced the route to ``to_asn`` and the
    *exporter's* rules were checked; for an import, the *importer's*
    (``to_asn``) rules were checked for the same hop.
    """

    direction: str  # "import" or "export"
    from_asn: int
    to_asn: int
    status: VerifyStatus
    items: tuple[ReportItem, ...] = ()
    # Whether at least one rule's peering covered the remote AS (when the
    # status is UNVERIFIED, False means the relationship itself is
    # undeclared — the dominant failure mode in Section 5.2).
    peer_matched: bool = False
    # Provenance: which of the subject's rules decided the verdict (an
    # index into aut_num.imports/.exports, set when a single rule matched)
    # and which IRR the consulted aut-num object came from.  Excluded from
    # the printed report, so Appendix-C output is unchanged.
    rule_index: int | None = None
    rule_source: str | None = None

    @property
    def subject_asn(self) -> int:
        """The AS whose rules were checked."""
        return self.to_asn if self.direction == "import" else self.from_asn

    @property
    def special_case(self) -> SpecialCase | None:
        """The special case that fired, if the status is relaxed/safelisted."""
        for item in self.items:
            case = item.special_case
            if case is not None:
                return case
        return None

    @property
    def unrecorded_reason(self) -> UnrecordedReason | None:
        """The dominating unrecorded sub-reason, if status is UNRECORDED."""
        for item in self.items:
            reason = item.unrecorded_reason
            if reason is not None:
                return reason
        return None

    def __str__(self) -> str:
        word = _STATUS_WORD[self.status] + self.direction.capitalize()
        if not self.items:
            return f"{word} {{ from: {self.from_asn}, to: {self.to_asn} }}"
        items = ", ".join(str(item) for item in self.items)
        return f"{word} {{ from: {self.from_asn}, to: {self.to_asn}, items: [{items}] }}"


@dataclass(slots=True)
class RouteReport:
    """The verification report for one BGP route: all hops, both directions.

    ``ignored`` is set (and ``hops`` empty) for routes the paper excludes:
    single-AS paths exported directly by collector peers and paths
    containing BGP AS_SET segments.
    """

    entry: RouteEntry
    hops: list[HopReport] = field(default_factory=list)
    ignored: str | None = None

    def statuses(self) -> list[VerifyStatus]:
        """The status of every hop check, origin side first."""
        return [hop.status for hop in self.hops]

    def __str__(self) -> str:
        if self.ignored is not None:
            return f"Ignored({self.ignored}) {self.entry.prefix}"
        header = f"# {self.entry.prefix} path {' '.join(map(str, self.entry.as_path))}"
        return "\n".join([header, *(str(hop) for hop in self.hops)])
