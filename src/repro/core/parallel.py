"""Bulk verification: one entry point for serial and multi-process runs.

The paper verifies 779 M routes on a dual-64-core server;
:func:`verify_table` is this reproduction's bulk path.  With
``processes=1`` it streams entries through one
:class:`~repro.core.verify.Verifier`; with more, entries are chunked
*lazily* from the input iterable (dumps never have to fit in memory as a
list), each worker process builds its own Verifier (the query-engine
indexes are per-process, so no shared mutable state), folds its chunk into
a local :class:`VerificationStats`, and the per-worker aggregates are
merged — reports themselves never cross process boundaries, keeping IPC
traffic tiny.

Worker processes fork where the platform supports it (cheapest: the parsed
IR is shared copy-on-write) and fall back to ``spawn`` elsewhere
(macOS/Windows), where the IR is pickled to each worker instead.  Metrics
follow the same merge discipline as the stats: when the parent has a live
:class:`~repro.obs.MetricsRegistry`, each worker records into its own
registry and per-chunk snapshot *deltas* ride back with the chunk results
to be folded into the parent's registry.
"""

from __future__ import annotations

import multiprocessing
import warnings
from itertools import islice
from typing import Callable, Iterable, Iterator, Sequence

from repro.bgp.table import RouteEntry
from repro.bgp.topology import AsRelationships
from repro.core.report import RouteReport
from repro.core.verify import Verifier, VerifyOptions
from repro.ir.model import Ir
from repro.obs import MetricsRegistry, get_registry, set_registry
from repro.stats.verification import VerificationStats

__all__ = ["verify_table", "verify_entries", "verify_entries_parallel"]

_WORKER_VERIFIER: Verifier | None = None
_WORKER_COLLECT_METRICS = False
_WORKER_LAST_SNAPSHOT: dict | None = None


def _iter_chunks(
    entries: Iterable[RouteEntry], chunk_size: int
) -> Iterator[list[RouteEntry]]:
    iterator = iter(entries)
    while chunk := list(islice(iterator, chunk_size)):
        yield chunk


def _chain_first(
    first: list[RouteEntry], rest: Iterator[list[RouteEntry]]
) -> Iterator[list[RouteEntry]]:
    yield first
    yield from rest


def _default_start_method() -> str:
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


def _record_cache_hit_rate(registry) -> None:
    """Derive the hop-cache hit-rate gauge from the merged counters."""
    hits = registry.counter("verify_hop_cache_total", result="hit").value
    misses = registry.counter("verify_hop_cache_total", result="miss").value
    total = hits + misses
    registry.gauge("verify_hop_cache_hit_rate").set(hits / total if total else 0.0)


def _snapshot_delta(current: dict, previous: dict | None) -> dict:
    """What ``current`` adds over ``previous`` (worker chunk boundaries).

    The worker's registry accumulates for its whole life (so the verifier's
    pre-bound instruments stay valid and the hop cache survives across
    chunks); each chunk ships only the delta so the parent's merge stays an
    exact sum.  Gauges are point-in-time and pass through unchanged.
    """
    if previous is None:
        return current

    def key(record: dict) -> tuple:
        return (record["name"], tuple(sorted(record["labels"].items())))

    prev_counters = {key(r): r for r in previous.get("counters", ())}
    counters = []
    for record in current.get("counters", ()):
        before = prev_counters.get(key(record))
        value = record["value"] - (before["value"] if before else 0)
        if value:
            counters.append({**record, "value": value})

    prev_hists = {key(r): r for r in previous.get("histograms", ())}
    histograms = []
    for record in current.get("histograms", ()):
        before = prev_hists.get(key(record))
        if before is None:
            if record["count"]:
                histograms.append(record)
            continue
        count = record["count"] - before["count"]
        if not count:
            continue
        histograms.append(
            {
                **record,
                "bucket_counts": [
                    now - then
                    for now, then in zip(
                        record["bucket_counts"], before["bucket_counts"]
                    )
                ],
                "sum": record["sum"] - before["sum"],
                "count": count,
            }
        )

    prev_spans = {r["path"]: r for r in previous.get("spans", ())}
    spans = []
    for record in current.get("spans", ()):
        before = prev_spans.get(record["path"])
        if before is None:
            spans.append(record)
            continue
        count = record["count"] - before["count"]
        if not count:
            continue
        spans.append(
            {
                **record,
                "count": count,
                "wall_s": record["wall_s"] - before["wall_s"],
                "cpu_s": record["cpu_s"] - before["cpu_s"],
            }
        )

    return {
        "counters": counters,
        "gauges": current.get("gauges", []),
        "histograms": histograms,
        "spans": spans,
    }


def _verify_serial(
    ir: Ir,
    relationships: AsRelationships,
    entries: Iterable[RouteEntry],
    options: VerifyOptions | None,
    on_report: Callable[[RouteReport], None] | None,
) -> VerificationStats:
    verifier = Verifier(ir, relationships, options)
    stats = VerificationStats()
    for entry in entries:
        report = verifier.verify_entry(entry)
        stats.add_report(report)
        if on_report is not None:
            on_report(report)
    return stats


def _init_worker(
    ir: Ir,
    relationships: AsRelationships,
    options: VerifyOptions | None,
    collect_metrics: bool,
) -> None:
    global _WORKER_VERIFIER, _WORKER_COLLECT_METRICS, _WORKER_LAST_SNAPSHOT
    _WORKER_COLLECT_METRICS = collect_metrics
    _WORKER_LAST_SNAPSHOT = None
    # A fresh registry per worker (never the parent's — under fork the
    # child would otherwise write into an inherited copy that nobody reads).
    set_registry(MetricsRegistry() if collect_metrics else None)
    _WORKER_VERIFIER = Verifier(ir, relationships, options)


def _verify_chunk(
    entries: Sequence[RouteEntry],
) -> tuple[VerificationStats, dict | None]:
    global _WORKER_LAST_SNAPSHOT
    assert _WORKER_VERIFIER is not None
    registry = get_registry()
    stats = VerificationStats()
    with registry.span("verify/worker"):
        for entry in entries:
            stats.add_report(_WORKER_VERIFIER.verify_entry(entry))
    if not _WORKER_COLLECT_METRICS:
        return stats, None
    snapshot = registry.snapshot()
    delta = _snapshot_delta(snapshot, _WORKER_LAST_SNAPSHOT)
    _WORKER_LAST_SNAPSHOT = snapshot
    return stats, delta


def verify_table(
    ir: Ir,
    relationships: AsRelationships,
    entries: Iterable[RouteEntry],
    *,
    options: VerifyOptions | None = None,
    processes: int | None = 1,
    chunk_size: int = 2000,
    start_method: str | None = None,
    on_report: Callable[[RouteReport], None] | None = None,
) -> VerificationStats:
    """Verify a table of routes; serial and parallel return equal stats.

    ``entries`` may be any iterable (e.g. the streaming
    :func:`~repro.bgp.table.parse_table_file` generator) — the parallel
    path chunks it lazily, so the whole table is never materialized.
    ``processes=None`` uses every CPU; ``1`` (the default) stays
    in-process.  ``on_report`` is called with every
    :class:`~repro.core.report.RouteReport` and forces the serial path
    (reports do not cross process boundaries).  ``start_method`` overrides
    the multiprocessing start method; by default ``fork`` is used where
    available and ``spawn`` otherwise.
    """
    if processes is None:
        processes = multiprocessing.cpu_count()
    registry = get_registry()
    with registry.span("verify"):
        if processes <= 1 or on_report is not None:
            stats = _verify_serial(ir, relationships, entries, options, on_report)
            if registry.enabled:
                _record_cache_hit_rate(registry)
            return stats

        chunks = _iter_chunks(entries, chunk_size)
        first = next(chunks, None)
        if first is None:
            return VerificationStats()
        if len(first) < chunk_size:
            # The whole table fit in one chunk: process start-up would not
            # amortize, so verify in-process instead.
            stats = _verify_serial(ir, relationships, first, options, None)
            if registry.enabled:
                _record_cache_hit_rate(registry)
            return stats

        total = VerificationStats()
        collect_metrics = registry.enabled
        context = multiprocessing.get_context(start_method or _default_start_method())
        with context.Pool(
            processes=processes,
            initializer=_init_worker,
            initargs=(ir, relationships, options, collect_metrics),
        ) as pool:
            chained = _chain_first(first, chunks)
            for partial, snapshot in pool.imap_unordered(_verify_chunk, chained):
                total.merge(partial)
                if snapshot is not None:
                    registry.merge_snapshot(snapshot)
        if collect_metrics:
            registry.gauge("verify_workers").set(processes)
            _record_cache_hit_rate(registry)
        return total


def verify_entries(
    ir: Ir,
    relationships: AsRelationships,
    entries: Iterable[RouteEntry],
    options: VerifyOptions | None = None,
) -> VerificationStats:
    """Deprecated alias for :func:`verify_table` with ``processes=1``."""
    warnings.warn(
        "verify_entries() is deprecated; use repro.api.verify_table(processes=1)",
        DeprecationWarning,
        stacklevel=2,
    )
    return verify_table(ir, relationships, entries, options=options, processes=1)


def verify_entries_parallel(
    ir: Ir,
    relationships: AsRelationships,
    entries: Sequence[RouteEntry],
    options: VerifyOptions | None = None,
    processes: int | None = None,
    chunk_size: int = 2000,
) -> VerificationStats:
    """Deprecated alias for :func:`verify_table` with ``processes=N``."""
    warnings.warn(
        "verify_entries_parallel() is deprecated; use repro.api.verify_table()",
        DeprecationWarning,
        stacklevel=2,
    )
    return verify_table(
        ir,
        relationships,
        entries,
        options=options,
        processes=processes,
        chunk_size=chunk_size,
    )
