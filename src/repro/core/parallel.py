"""Parallel bulk verification across processes.

The paper verifies 779 M routes on a dual-64-core server; this module is
the multi-core path for the Python reproduction.  Each worker process
builds one :class:`~repro.core.verify.Verifier` (the query-engine indexes
are per-process, so no shared mutable state), verifies its chunk of
routes, folds them into a local :class:`VerificationStats`, and the
per-worker aggregates are merged — reports themselves never cross process
boundaries, keeping IPC traffic tiny.
"""

from __future__ import annotations

import multiprocessing
from typing import Iterable, Sequence

from repro.bgp.table import RouteEntry
from repro.bgp.topology import AsRelationships
from repro.core.verify import Verifier, VerifyOptions
from repro.ir.model import Ir
from repro.stats.verification import VerificationStats

__all__ = ["verify_entries", "verify_entries_parallel"]

_WORKER_VERIFIER: Verifier | None = None


def verify_entries(
    ir: Ir,
    relationships: AsRelationships,
    entries: Iterable[RouteEntry],
    options: VerifyOptions | None = None,
) -> VerificationStats:
    """Single-process bulk verification into an aggregate."""
    verifier = Verifier(ir, relationships, options)
    stats = VerificationStats()
    for entry in entries:
        stats.add_report(verifier.verify_entry(entry))
    return stats


def _init_worker(ir: Ir, relationships: AsRelationships, options: VerifyOptions | None) -> None:
    global _WORKER_VERIFIER
    _WORKER_VERIFIER = Verifier(ir, relationships, options)


def _verify_chunk(entries: Sequence[RouteEntry]) -> VerificationStats:
    assert _WORKER_VERIFIER is not None
    stats = VerificationStats()
    for entry in entries:
        stats.add_report(_WORKER_VERIFIER.verify_entry(entry))
    return stats


def verify_entries_parallel(
    ir: Ir,
    relationships: AsRelationships,
    entries: Sequence[RouteEntry],
    options: VerifyOptions | None = None,
    processes: int | None = None,
    chunk_size: int = 2000,
) -> VerificationStats:
    """Verify routes across worker processes; results merge exactly.

    Falls back to the single-process path when one worker (or a trivially
    small input) would not amortize the process start-up cost.
    """
    if processes is None:
        processes = multiprocessing.cpu_count()
    if processes <= 1 or len(entries) <= chunk_size:
        return verify_entries(ir, relationships, entries, options)

    chunks = [
        entries[start : start + chunk_size]
        for start in range(0, len(entries), chunk_size)
    ]
    total = VerificationStats()
    context = multiprocessing.get_context("fork")
    with context.Pool(
        processes=processes,
        initializer=_init_worker,
        initargs=(ir, relationships, options),
    ) as pool:
        for partial in pool.imap_unordered(_verify_chunk, chunks):
            total.merge(partial)
    return total
