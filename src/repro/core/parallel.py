"""Bulk verification: one entry point for serial and multi-process runs.

The paper verifies 779 M routes on a dual-64-core server;
:func:`verify_table` is this reproduction's bulk path.  With
``processes=1`` it streams entries through one
:class:`~repro.core.verify.Verifier`; with more, entries are chunked
*lazily* from the input iterable (dumps never have to fit in memory as a
list), each worker process builds its own Verifier (the query-engine
indexes are per-process, so no shared mutable state), folds its chunk into
a local :class:`VerificationStats`, and the per-worker aggregates are
merged — reports themselves never cross process boundaries, keeping IPC
traffic tiny.

Worker processes fork where the platform supports it (cheapest: the parsed
IR is shared copy-on-write) and fall back to ``spawn`` elsewhere
(macOS/Windows), where the IR is pickled to each worker instead.  Metrics
follow the same merge discipline as the stats: when the parent has a live
:class:`~repro.obs.MetricsRegistry`, each worker records into its own
registry and per-chunk snapshot *deltas* ride back with the chunk results
to be folded into the parent's registry.

The parallel path survives worker death (see ``docs/robustness.md``): a
chunk whose worker was killed (OOM killer, operator signal, or the chaos
harness's injected faults) is requeued with bounded retries; a chunk that
fails :data:`MAX_CHUNK_ATTEMPTS` times in workers is verified serially
in-process; and if the pool itself keeps collapsing the whole remainder of
the table is drained serially.  Every such step is recorded in the
returned stats' :class:`~repro.core.degradation.DegradationReport` and, if
metrics are live, as ``verify_degradation_total`` counters — the run
completes with exact stats either way.
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import tempfile
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from itertools import islice
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

from repro.bgp.table import RouteEntry
from repro.bgp.topology import AsRelationships
from repro.core.compiled import CompiledIndex, compile_index
from repro.core.report import RouteReport
from repro.core.verify import Verifier, VerifyOptions
from repro.ir.model import Ir
from repro.obs import MetricsRegistry, get_registry, set_registry
from repro.obs.trace import TraceConfig, Tracer, get_tracer, set_tracer
from repro.stats.verification import VerificationStats

__all__ = [
    "verify_table",
    "reset_worker_observability",
    "MAX_CHUNK_ATTEMPTS",
    "MAX_POOL_REBUILDS",
]

# A chunk is tried this many times in worker processes before the parent
# gives up on parallelism for it and verifies it serially in-process.
MAX_CHUNK_ATTEMPTS = 2
# The pool is rebuilt after worker death at most this many times; beyond
# it, the remainder of the table is drained serially.
MAX_POOL_REBUILDS = 5

_WORKER_VERIFIER: Verifier | None = None
_WORKER_COLLECT_METRICS = False
_WORKER_LAST_SNAPSHOT: dict | None = None
_WORKER_FAULT_HOOK: Callable[[int], None] | None = None


def _iter_chunks(
    entries: Iterable[RouteEntry], chunk_size: int
) -> Iterator[list[RouteEntry]]:
    iterator = iter(entries)
    while chunk := list(islice(iterator, chunk_size)):
        yield chunk


def _chain_first(
    first: list[RouteEntry], rest: Iterator[list[RouteEntry]]
) -> Iterator[list[RouteEntry]]:
    yield first
    yield from rest


def _default_start_method() -> str:
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


def _record_cache_hit_rate(registry) -> None:
    """Derive the hop-cache hit-rate gauge from the merged counters."""
    hits = registry.counter("verify_hop_cache_total", result="hit").value
    misses = registry.counter("verify_hop_cache_total", result="miss").value
    total = hits + misses
    registry.gauge("verify_hop_cache_hit_rate").set(hits / total if total else 0.0)


def _trace_marks(tracer: Tracer) -> tuple[int, int]:
    """The tracer's (emitted, dropped) cursors before this run started."""
    return (tracer.emitted, tracer.dropped)


def _record_trace_metrics(registry, tracer: Tracer, marks: tuple[int, int]) -> None:
    """Fold this run's trace-event counts into the metrics registry."""
    if not registry.enabled or not tracer.enabled:
        return
    emitted = tracer.emitted - marks[0]
    dropped = tracer.dropped - marks[1]
    if emitted:
        registry.counter("trace_events_total").inc(emitted)
    if dropped:
        registry.counter("trace_events_dropped_total").inc(dropped)


def _snapshot_delta(current: dict, previous: dict | None) -> dict:
    """What ``current`` adds over ``previous`` (worker chunk boundaries).

    The worker's registry accumulates for its whole life (so the verifier's
    pre-bound instruments stay valid and the hop cache survives across
    chunks); each chunk ships only the delta so the parent's merge stays an
    exact sum.  Gauges are point-in-time and pass through unchanged.
    """
    if previous is None:
        return current

    def key(record: dict) -> tuple:
        return (record["name"], tuple(sorted(record["labels"].items())))

    prev_counters = {key(r): r for r in previous.get("counters", ())}
    counters = []
    for record in current.get("counters", ()):
        before = prev_counters.get(key(record))
        value = record["value"] - (before["value"] if before else 0)
        if value:
            counters.append({**record, "value": value})

    prev_hists = {key(r): r for r in previous.get("histograms", ())}
    histograms = []
    for record in current.get("histograms", ()):
        before = prev_hists.get(key(record))
        if before is None:
            if record["count"]:
                histograms.append(record)
            continue
        count = record["count"] - before["count"]
        if not count:
            continue
        histograms.append(
            {
                **record,
                "bucket_counts": [
                    now - then
                    for now, then in zip(
                        record["bucket_counts"], before["bucket_counts"]
                    )
                ],
                "sum": record["sum"] - before["sum"],
                "count": count,
            }
        )

    prev_spans = {r["path"]: r for r in previous.get("spans", ())}
    spans = []
    for record in current.get("spans", ()):
        before = prev_spans.get(record["path"])
        if before is None:
            spans.append(record)
            continue
        count = record["count"] - before["count"]
        if not count:
            continue
        spans.append(
            {
                **record,
                "count": count,
                "wall_s": record["wall_s"] - before["wall_s"],
                "cpu_s": record["cpu_s"] - before["cpu_s"],
            }
        )

    return {
        "counters": counters,
        "gauges": current.get("gauges", []),
        "histograms": histograms,
        "spans": spans,
    }


def _verify_serial(
    ir: Ir,
    relationships: AsRelationships,
    entries: Iterable[RouteEntry],
    options: VerifyOptions | None,
    on_report: Callable[[RouteReport], None] | None,
    index: CompiledIndex | None = None,
) -> VerificationStats:
    verifier = Verifier(ir, relationships, options, index=index)
    stats = VerificationStats()
    for entry in entries:
        report = verifier.verify_entry(entry)
        stats.add_report(report)
        if on_report is not None:
            on_report(report)
    return stats


def reset_worker_observability(
    collect_metrics: bool,
    trace_config: TraceConfig | None = None,
    trace_dir: str | None = None,
) -> None:
    """Install fresh per-process observability in a worker.

    Every worker process — the batch pool's and the serve supervisor's —
    must never write into registries or tracers inherited across fork
    (the parent would never read the child's copy).  This sets a fresh
    :class:`MetricsRegistry` (or None) and either a per-worker
    spill-to-JSONL tracer (merged by the parent after the pool drains)
    or the null tracer.
    """
    set_registry(MetricsRegistry() if collect_metrics else None)
    if trace_config is not None and trace_dir is not None:
        set_tracer(
            Tracer(
                trace_config,
                sink=Path(trace_dir) / f"worker-{os.getpid()}.jsonl",
                worker_id=os.getpid(),
            )
        )
    else:
        set_tracer(None)


def _init_worker(
    ir: Ir,
    relationships: AsRelationships,
    options: VerifyOptions | None,
    collect_metrics: bool,
    fault_hook: Callable[[int], None] | None = None,
    index: CompiledIndex | None = None,
    trace_config: TraceConfig | None = None,
    trace_dir: str | None = None,
) -> None:
    global _WORKER_VERIFIER, _WORKER_COLLECT_METRICS, _WORKER_LAST_SNAPSHOT
    global _WORKER_FAULT_HOOK
    _WORKER_COLLECT_METRICS = collect_metrics
    _WORKER_LAST_SNAPSHOT = None
    _WORKER_FAULT_HOOK = fault_hook
    reset_worker_observability(collect_metrics, trace_config, trace_dir)
    # The compiled index arrives pre-built: shared copy-on-write under
    # fork, pickled once per worker under spawn — either way the worker's
    # verifier starts warm instead of re-deriving every memo cache cold.
    _WORKER_VERIFIER = Verifier(ir, relationships, options, index=index)


def _verify_chunk(
    task: tuple[int, Sequence[RouteEntry]],
) -> tuple[int, VerificationStats, dict | None]:
    index, entries = task
    global _WORKER_LAST_SNAPSHOT
    assert _WORKER_VERIFIER is not None
    if _WORKER_FAULT_HOOK is not None:
        # Chaos instrumentation: lets the fault-injection harness kill this
        # worker (or raise) at a chosen chunk.  Never set in production runs.
        _WORKER_FAULT_HOOK(index)
    registry = get_registry()
    tracer = get_tracer()
    if tracer.enabled:
        tracer.chunk_id = index
    stats = VerificationStats()
    try:
        with registry.span("verify/worker"):
            for entry in entries:
                stats.add_report(_WORKER_VERIFIER.verify_entry(entry))
    except BaseException:
        # A mid-chunk failure must still advance the snapshot cursor:
        # whatever this partial attempt recorded is baked into the worker's
        # cumulative registry, and without moving the cursor a retry of the
        # same chunk on this worker would ship a delta that double-counts it.
        if _WORKER_COLLECT_METRICS:
            _WORKER_LAST_SNAPSHOT = registry.snapshot()
        raise
    if not _WORKER_COLLECT_METRICS:
        return index, stats, None
    snapshot = registry.snapshot()
    delta = _snapshot_delta(snapshot, _WORKER_LAST_SNAPSHOT)
    _WORKER_LAST_SNAPSHOT = snapshot
    return index, stats, delta


def _verify_parallel(
    ir: Ir,
    relationships: AsRelationships,
    chunk_source: Iterator[tuple[int, list[RouteEntry]]],
    options: VerifyOptions | None,
    processes: int,
    context,
    collect_metrics: bool,
    registry,
    fault_hook: Callable[[int], None] | None,
    compiled_index: CompiledIndex | None,
    trace_config: TraceConfig | None = None,
    trace_dir: str | None = None,
) -> VerificationStats:
    """The resilient fan-out: submit chunks, survive worker death."""
    total = VerificationStats()
    degradation = total.degradation
    fallback_verifier: Verifier | None = None

    def verify_serially(chunk: list[RouteEntry]) -> None:
        nonlocal fallback_verifier
        if fallback_verifier is None:
            fallback_verifier = Verifier(
                ir, relationships, options, index=compiled_index
            )
        for entry in chunk:
            total.add_report(fallback_verifier.verify_entry(entry))

    def make_executor() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=processes,
            mp_context=context,
            initializer=_init_worker,
            initargs=(
                ir,
                relationships,
                options,
                collect_metrics,
                fault_hook,
                compiled_index,
                trace_config,
                trace_dir,
            ),
        )

    executor: ProcessPoolExecutor | None = None
    pending: dict[Future, tuple[int, list[RouteEntry]]] = {}
    requeued: deque[tuple[int, list[RouteEntry]]] = deque()
    attempts: dict[int, int] = {}
    rebuilds = 0
    exhausted = False
    parallel_abandoned = False
    max_inflight = processes + 2

    def handle_failure(index: int, chunk: list[RouteEntry], why: str) -> None:
        attempts[index] = attempts.get(index, 0) + 1
        if attempts[index] >= MAX_CHUNK_ATTEMPTS:
            degradation.record(
                "verify", "chunk-serial-fallback", f"chunk {index}: {why}"
            )
            verify_serially(chunk)
        else:
            degradation.record("verify", "chunk-requeued", f"chunk {index}: {why}")
            requeued.append((index, chunk))

    def pool_broke() -> None:
        """Fail over everything in flight and retire the dead executor."""
        nonlocal executor, rebuilds, parallel_abandoned
        rebuilds += 1
        degradation.record(
            "verify", "worker-lost", f"process pool rebuild #{rebuilds}"
        )
        # Every still-pending future is collateral damage of the same
        # breakage; their results were never consumed, so requeuing keeps
        # the count exact.
        for _, (index, chunk) in list(pending.items()):
            handle_failure(index, chunk, "pool broken")
        pending.clear()
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)
            executor = None
        if rebuilds >= MAX_POOL_REBUILDS:
            parallel_abandoned = True
            degradation.record(
                "verify",
                "parallel-abandoned",
                f"pool collapsed {rebuilds} times; draining serially",
            )

    try:
        while True:
            # Submission: requeued chunks first, then fresh ones from the
            # lazy source, keeping a bounded number in flight.
            while not parallel_abandoned and len(pending) < max_inflight:
                if requeued:
                    index, chunk = requeued.popleft()
                elif not exhausted:
                    item = next(chunk_source, None)
                    if item is None:
                        exhausted = True
                        continue
                    index, chunk = item
                else:
                    break
                if executor is None:
                    executor = make_executor()
                try:
                    future = executor.submit(_verify_chunk, (index, chunk))
                except BrokenProcessPool:
                    # The pool died between wait-loop iterations, before
                    # any of its futures surfaced the failure to us.
                    handle_failure(index, chunk, "pool broken at submit")
                    pool_broke()
                    continue
                pending[future] = (index, chunk)
            if not pending:
                if parallel_abandoned:
                    # Workers keep dying: drain everything left serially.
                    for _, chunk in requeued:
                        verify_serially(chunk)
                    requeued.clear()
                    for _, chunk in chunk_source:
                        verify_serially(chunk)
                break

            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            pool_broken = False
            for future in done:
                index, chunk = pending.pop(future)
                try:
                    _, partial, snapshot = future.result()
                except BrokenProcessPool:
                    pool_broken = True
                    handle_failure(index, chunk, "worker process died")
                except Exception as exc:  # noqa: BLE001 - chunk-scoped retry
                    # The worker survived but the chunk failed; retry it,
                    # and let a deterministic error surface from the serial
                    # fallback instead of killing the whole run here.
                    handle_failure(index, chunk, f"{type(exc).__name__}: {exc}")
                else:
                    total.merge(partial)
                    if snapshot is not None:
                        registry.merge_snapshot(snapshot)
            if pool_broken:
                pool_broke()
    finally:
        if executor is not None:
            executor.shutdown(wait=True)

    if collect_metrics:
        registry.gauge("verify_workers").set(processes)
        for event in degradation.events():
            registry.counter(
                "verify_degradation_total",
                component=event.component,
                kind=event.kind,
            ).inc(event.count)
    return total


def verify_table(
    ir: Ir,
    relationships: AsRelationships,
    entries: Iterable[RouteEntry],
    *,
    options: VerifyOptions | None = None,
    processes: int | None = 1,
    chunk_size: int = 2000,
    start_method: str | None = None,
    on_report: Callable[[RouteReport], None] | None = None,
    fault_hook: Callable[[int], None] | None = None,
    index: CompiledIndex | None = None,
) -> VerificationStats:
    """Verify a table of routes; serial and parallel return equal stats.

    ``entries`` may be any iterable (e.g. the streaming
    :func:`~repro.bgp.table.parse_table_file` generator) — the parallel
    path chunks it lazily, so the whole table is never materialized.
    ``processes=None`` uses every CPU; ``1`` (the default) stays
    in-process.  ``on_report`` is called with every
    :class:`~repro.core.report.RouteReport` and forces the serial path
    (reports do not cross process boundaries).  ``start_method`` overrides
    the multiprocessing start method; by default ``fork`` is used where
    available and ``spawn`` otherwise.

    The parallel path tolerates dying workers: failed chunks are requeued
    (bounded by :data:`MAX_CHUNK_ATTEMPTS`), then verified serially, and
    every degradation is recorded on the returned stats'
    ``degradation`` report.  ``fault_hook`` is chaos-harness
    instrumentation — a picklable callable invoked in each worker with the
    chunk index before verification (see :mod:`repro.chaos`).

    ``index`` is a :class:`~repro.core.compiled.CompiledIndex` for ``ir``
    (see :func:`~repro.core.compiled.compile_index`); every verifier —
    serial, worker, and fallback — then starts from the same precompiled
    caches.  The parallel path compiles one automatically when none is
    given, so workers inherit it (copy-on-write under fork, pickled once
    under spawn) instead of re-deriving set closures per process.
    """
    if processes is None:
        processes = multiprocessing.cpu_count()
    registry = get_registry()
    tracer = get_tracer()
    marks = _trace_marks(tracer)
    with registry.span("verify"):
        if processes <= 1 or on_report is not None:
            stats = _verify_serial(
                ir, relationships, entries, options, on_report, index
            )
            if registry.enabled:
                _record_cache_hit_rate(registry)
            _record_trace_metrics(registry, tracer, marks)
            return stats

        chunks = _iter_chunks(entries, chunk_size)
        first = next(chunks, None)
        if first is None:
            return VerificationStats()
        if len(first) < chunk_size:
            # The whole table fit in one chunk: process start-up would not
            # amortize, so verify in-process instead.
            stats = _verify_serial(ir, relationships, first, options, None, index)
            if registry.enabled:
                _record_cache_hit_rate(registry)
            _record_trace_metrics(registry, tracer, marks)
            return stats

        if index is None:
            # Compile once in the parent, before the pool exists: under
            # fork every worker then shares the artifact copy-on-write.
            index = compile_index(ir)
        context = multiprocessing.get_context(start_method or _default_start_method())
        # When tracing is live, workers spill events to per-worker JSONL
        # files in a scratch directory; the parent merges (and dedups) them
        # after the pool drains, so traces survive killed workers, chunk
        # retries, and the serial fallback (which emits into ``tracer``
        # directly in-process).
        trace_dir = tempfile.mkdtemp(prefix="rpslyzer-trace-") if tracer.enabled else None
        try:
            total = _verify_parallel(
                ir,
                relationships,
                enumerate(_chain_first(first, chunks)),
                options,
                processes,
                context,
                registry.enabled,
                registry,
                fault_hook,
                index,
                tracer.config if tracer.enabled else None,
                trace_dir,
            )
            if trace_dir is not None:
                tracer.merge_directory(trace_dir)
        finally:
            if trace_dir is not None:
                shutil.rmtree(trace_dir, ignore_errors=True)
        if registry.enabled:
            _record_cache_hit_rate(registry)
        _record_trace_metrics(registry, tracer, marks)
        return total
