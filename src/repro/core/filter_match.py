"""Filter evaluation against observed routes (four-valued logic).

A filter check can conclude more than true/false: it may be undecidable
because the rule uses a construct the verifier skips (BGP communities,
unsupported regex operators), or because it references objects missing
from the IRRs.  Those outcomes map onto the paper's SKIP and UNRECORDED
statuses, so evaluation is four-valued::

    FALSE < UNREC < SKIP < TRUE      (classification priority differs!)

Combinators: AND is FALSE if any side is FALSE, else SKIP if any side is
SKIP, else UNREC if any, else TRUE; OR is the dual; NOT swaps TRUE/FALSE
and preserves SKIP/UNREC.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from repro.core.aspath_match import AsPathMatcher
from repro.core.query import QueryEngine
from repro.core.report import ItemKind, ReportItem, _op_label
from repro.net.prefix import Prefix, RangeOp
from repro.rpsl.aspath import regex_flags
from repro.rpsl.filter import (
    Filter,
    FilterAnd,
    FilterAny,
    FilterAsn,
    FilterAsPathRegex,
    FilterAsSet,
    FilterCommunity,
    FilterFltrSetRef,
    FilterNot,
    FilterOr,
    FilterPeerAs,
    FilterPrefixSet,
    FilterRouteSet,
)

__all__ = [
    "MAX_ITEMS",
    "MAX_TRACE_STEPS",
    "Val",
    "Eval",
    "MatchContext",
    "FilterEvaluator",
]

# Evidence items per evaluation are capped here, *during* combination —
# reports themselves cap at the same bound, so truncating the (prefix of
# the) concatenation early changes nothing downstream while keeping the
# combinators from allocating unbounded intermediate tuples.
MAX_ITEMS = 12

# Deep traces record at most this many evaluation steps per hop; pathological
# rules (huge OR chains) would otherwise dominate the trace file.
MAX_TRACE_STEPS = 48


def _op_suffix(op: RangeOp | None) -> str:
    label = _op_label(op)
    if label is None or label == "NoOp":
        return ""
    return label


def _describe(node: Filter) -> str:
    """A compact, stable one-line spelling of a filter node for traces."""
    if isinstance(node, FilterAny):
        return "ANY"
    if isinstance(node, FilterPeerAs):
        return "PeerAS"
    if isinstance(node, FilterAsn):
        return f"AS{node.asn}{_op_suffix(node.op)}"
    if isinstance(node, FilterAsSet):
        return f"{node.name}{_op_suffix(node.op)}"
    if isinstance(node, FilterRouteSet):
        return f"{node.name}{_op_suffix(node.op)}"
    if isinstance(node, FilterPrefixSet):
        return f"{{{len(node.members)} prefixes}}{_op_suffix(node.op)}"
    if isinstance(node, FilterFltrSetRef):
        return node.name
    if isinstance(node, FilterAsPathRegex):
        return "<as-path-regex>"
    if isinstance(node, FilterCommunity):
        return f"community({', '.join(node.args)})"
    if isinstance(node, FilterAnd):
        return "AND"
    if isinstance(node, FilterOr):
        return "OR"
    if isinstance(node, FilterNot):
        return "NOT"
    return type(node).__name__


class Val(IntEnum):
    """Four-valued evaluation result."""

    FALSE = 0
    UNREC = 1
    SKIP = 2
    TRUE = 3


def _merge_items(
    left: tuple[ReportItem, ...], right: tuple[ReportItem, ...]
) -> tuple[ReportItem, ...]:
    """Concatenate evidence, reusing either side when the other is empty.

    Millions of hop checks combine evals whose sides carry no items at
    all; short-circuiting those avoids allocating a fresh tuple per
    combinator call on the hot path.
    """
    if not right:
        return left
    if not left:
        return right
    room = MAX_ITEMS - len(left)
    if room <= 0:
        return left
    return left + right[:room]


def _and(left: "Eval", right: "Eval") -> "Eval":
    if left.value is Val.FALSE or right.value is Val.FALSE:
        return Eval(Val.FALSE, _merge_items(left.items, right.items))
    if Val.SKIP in (left.value, right.value):
        return Eval(Val.SKIP, _merge_items(left.items, right.items))
    if Val.UNREC in (left.value, right.value):
        return Eval(Val.UNREC, _merge_items(left.items, right.items))
    return Eval(Val.TRUE)


def _or(left: "Eval", right: "Eval") -> "Eval":
    if left.value is Val.TRUE or right.value is Val.TRUE:
        return Eval(Val.TRUE)
    if Val.SKIP in (left.value, right.value):
        return Eval(Val.SKIP, _merge_items(left.items, right.items))
    if Val.UNREC in (left.value, right.value):
        return Eval(Val.UNREC, _merge_items(left.items, right.items))
    return Eval(Val.FALSE, _merge_items(left.items, right.items))


@dataclass(frozen=True, slots=True)
class Eval:
    """A value plus the evidence items explaining a non-TRUE outcome."""

    value: Val
    items: tuple[ReportItem, ...] = ()

    def and_(self, other: "Eval") -> "Eval":
        """Four-valued conjunction (FALSE dominates, then SKIP, UNREC)."""
        return _and(self, other)

    def or_(self, other: "Eval") -> "Eval":
        """Four-valued disjunction (TRUE dominates, then SKIP, UNREC)."""
        return _or(self, other)

    def not_(self) -> "Eval":
        """Negation: swaps TRUE/FALSE, preserves SKIP and UNREC."""
        if self.value is Val.TRUE:
            return Eval(Val.FALSE)
        if self.value is Val.FALSE:
            return Eval(Val.TRUE)
        return self


@dataclass(frozen=True, slots=True)
class MatchContext:
    """What one rule check sees of the route.

    ``as_path`` is the sub-path from the announcing AS to the origin
    (origin-last), which is the AS_PATH the subject AS observes for this
    hop; ``peer_asn`` is the remote AS of the rule (resolves ``PeerAS``).
    """

    prefix: Prefix
    as_path: tuple[int, ...]
    peer_asn: int
    self_asn: int
    communities: frozenset[tuple[int, int]] = frozenset()

    @property
    def origin(self) -> int:
        """The route's origin AS."""
        return self.as_path[-1]


class FilterEvaluator:
    """Evaluates filter ASTs through a query engine and a regex matcher."""

    def __init__(
        self,
        query: QueryEngine,
        matcher: AsPathMatcher | None = None,
        handle_asn_ranges: bool = False,
        handle_same_pattern: bool = False,
        community_matches: bool = False,
    ):
        self.query = query
        self.matcher = matcher if matcher is not None else AsPathMatcher(query)
        self.handle_asn_ranges = handle_asn_ranges
        self.handle_same_pattern = handle_same_pattern
        self.community_matches = community_matches
        # Guards against cyclic filter-set definitions (FLTR-A -> FLTR-B ->
        # FLTR-A), which would otherwise recurse without bound.
        self._filter_set_stack: set[str] = set()
        # Deep-trace sink: when set (by Verifier._traced_check), every
        # evaluate() call appends "node -> outcome" to it.  None on the hot
        # path, so untraced evaluation pays one attribute load per node.
        self._trace: list[str] | None = None

    def begin_trace(self, sink: list[str]) -> None:
        """Record each evaluation step into ``sink`` until :meth:`end_trace`."""
        self._trace = sink

    def end_trace(self) -> None:
        """Stop recording evaluation steps (see :meth:`begin_trace`)."""
        self._trace = None

    def evaluate(self, node: Filter, ctx: MatchContext) -> Eval:
        """Evaluate one filter node against the route context."""
        trace = self._trace
        if trace is None:
            return self._evaluate(node, ctx)
        result = self._evaluate(node, ctx)
        if len(trace) < MAX_TRACE_STEPS:
            trace.append(f"{_describe(node)} -> {result.value.name.lower()}")
        return result

    def _evaluate(self, node: Filter, ctx: MatchContext) -> Eval:
        if isinstance(node, FilterAny):
            return Eval(Val.TRUE)
        if isinstance(node, FilterPeerAs):
            return self._eval_asn(ctx.peer_asn, RangeOp(), ctx)
        if isinstance(node, FilterAsn):
            return self._eval_asn(node.asn, node.op, ctx)
        if isinstance(node, FilterAsSet):
            return self._eval_as_set(node, ctx)
        if isinstance(node, FilterRouteSet):
            return self._eval_route_set(node, ctx)
        if isinstance(node, FilterPrefixSet):
            return self._eval_prefix_set(node, ctx)
        if isinstance(node, FilterFltrSetRef):
            return self._eval_filter_set(node, ctx)
        if isinstance(node, FilterAsPathRegex):
            return self._eval_regex(node, ctx)
        if isinstance(node, FilterCommunity):
            if self.community_matches:
                return self._eval_community(node, ctx)
            return Eval(Val.SKIP, (ReportItem.of(ItemKind.SKIPPED_COMMUNITY),))
        if isinstance(node, FilterAnd):
            return self.evaluate(node.left, ctx).and_(self.evaluate(node.right, ctx))
        if isinstance(node, FilterOr):
            return self.evaluate(node.left, ctx).or_(self.evaluate(node.right, ctx))
        if isinstance(node, FilterNot):
            return self.evaluate(node.inner, ctx).not_()
        raise TypeError(f"unknown filter node {node!r}")

    def _eval_asn(self, asn: int, op: RangeOp, ctx: MatchContext) -> Eval:
        if not self.query.has_any_routes(asn):
            return Eval(
                Val.UNREC, (ReportItem.of(ItemKind.UNRECORDED_AS_ROUTES, asn=asn),)
            )
        if self.query.asn_route_match(asn, ctx.prefix, op):
            return Eval(Val.TRUE)
        return Eval(
            Val.FALSE, (ReportItem.of(ItemKind.MATCH_FILTER_AS_NUM, asn=asn, op=op),)
        )

    def _eval_as_set(self, node: FilterAsSet, ctx: MatchContext) -> Eval:
        if node.any_member:
            return Eval(Val.TRUE)
        resolution = self.query.flatten_as_set(node.name)
        if self.query.as_set_route_match(node.name, ctx.prefix, node.op):
            return Eval(Val.TRUE)
        if not resolution.recorded:
            return Eval(
                Val.UNREC,
                (ReportItem.of(ItemKind.UNRECORDED_AS_SET, name=node.name),),
            )
        if resolution.unrecorded:
            items = tuple(
                ReportItem.of(ItemKind.UNRECORDED_AS_SET, name=missing)
                for missing in resolution.unrecorded[:4]
            )
            return Eval(Val.UNREC, items)
        return Eval(
            Val.FALSE,
            (ReportItem.of(ItemKind.MATCH_FILTER_AS_SET, name=node.name, op=node.op),),
        )

    def _eval_route_set(self, node: FilterRouteSet, ctx: MatchContext) -> Eval:
        if node.any_member:
            return Eval(Val.TRUE)
        resolution = self.query.resolve_route_set(node.name)
        if self.query.route_set_match(node.name, ctx.prefix, node.op):
            return Eval(Val.TRUE)
        if not resolution.recorded:
            return Eval(
                Val.UNREC,
                (ReportItem.of(ItemKind.UNRECORDED_ROUTE_SET, name=node.name),),
            )
        if resolution.unrecorded:
            items = tuple(
                ReportItem.of(ItemKind.UNRECORDED_ROUTE_SET, name=missing)
                for missing in resolution.unrecorded[:4]
            )
            return Eval(Val.UNREC, items)
        return Eval(
            Val.FALSE,
            (ReportItem.of(ItemKind.MATCH_FILTER_ROUTE_SET, name=node.name, op=node.op),),
        )

    def _eval_prefix_set(self, node: FilterPrefixSet, ctx: MatchContext) -> Eval:
        outer = node.op
        for declared, member_op in node.members:
            effective = member_op.compose(outer)
            if declared.matches_with_op(ctx.prefix, effective):
                return Eval(Val.TRUE)
        return Eval(Val.FALSE, (ReportItem.of(ItemKind.MATCH_FILTER_PREFIXES),))

    def _eval_community(self, node: FilterCommunity, ctx: MatchContext) -> Eval:
        """Match a community filter against observed community tags.

        Off by default (the paper skips these because intermediate ASes may
        strip communities); with ``community_matches`` the semantics are
        RFC 2622's: ``community(...)``/``community.contains(...)`` match
        when every listed tag is attached to the route.
        """
        if node.method not in ("", "contains"):
            return Eval(Val.SKIP, (ReportItem.of(ItemKind.SKIPPED_COMMUNITY),))
        wanted: set[tuple[int, int]] = set()
        for argument in node.args:
            high, _, low = argument.partition(":")
            if not (high.isdigit() and low.isdigit()):
                return Eval(Val.SKIP, (ReportItem.of(ItemKind.SKIPPED_COMMUNITY),))
            wanted.add((int(high), int(low)))
        if wanted <= ctx.communities:
            return Eval(Val.TRUE)
        return Eval(Val.FALSE, (ReportItem.of(ItemKind.SKIPPED_COMMUNITY),))

    def _eval_filter_set(self, node: FilterFltrSetRef, ctx: MatchContext) -> Eval:
        resolved = self.query.resolve_filter_set(node.name)
        if resolved is None or node.name in self._filter_set_stack:
            return Eval(
                Val.UNREC,
                (ReportItem.of(ItemKind.UNRECORDED_FILTER_SET, name=node.name),),
            )
        self._filter_set_stack.add(node.name)
        try:
            return self.evaluate(resolved, ctx)
        finally:
            self._filter_set_stack.discard(node.name)

    def _eval_regex(self, node: FilterAsPathRegex, ctx: MatchContext) -> Eval:
        has_range, has_same_pattern = regex_flags(node.regex)
        if has_range and not self.handle_asn_ranges:
            return Eval(Val.SKIP, (ReportItem.of(ItemKind.SKIPPED_REGEX_RANGE),))
        if has_same_pattern and not self.handle_same_pattern:
            return Eval(Val.SKIP, (ReportItem.of(ItemKind.SKIPPED_REGEX_TILDE),))
        result = self.matcher.match(node.regex, ctx.as_path, ctx.peer_asn)
        trace = self._trace
        if trace is not None and len(trace) < MAX_TRACE_STEPS:
            detail = f"as-path-regex: {result.candidates_tried} candidate(s)"
            if result.approximate:
                detail += ", approximate"
            trace.append(detail)
        if result.matched:
            return Eval(Val.TRUE)
        if result.unrecorded_sets:
            items = tuple(
                ReportItem.of(ItemKind.UNRECORDED_AS_SET, name=missing)
                for missing in result.unrecorded_sets[:4]
            )
            return Eval(Val.UNREC, items)
        return Eval(Val.FALSE, (ReportItem.of(ItemKind.MATCH_FILTER_AS_PATH),))
