"""The compile-once verification index (see ``docs/performance.md``).

Bulk verification evaluates the same immutable IR hundreds of millions of
times, yet the :class:`~repro.core.query.QueryEngine` resolves as-sets,
route-sets, and AS-path regexes *lazily per process*: every pool worker
re-derives the same memo caches cold, and every run re-derives them from
zero.  This module adds the missing compilation pass:

* :func:`compile_index` turns an :class:`~repro.ir.model.Ir` into an
  immutable, picklable :class:`CompiledIndex` — the frozen
  :class:`~repro.core.prefixtrie.RouteTrie` over every declared
  ⟨prefix, origin⟩ pair, members-by-reference maps, fully flattened
  as-set closures, resolved route-/peering-sets (their member tries
  pre-frozen), and AS-path regexes pre-lowered to matcher programs;
* a :class:`~repro.core.verify.Verifier` (or ``QueryEngine``/
  ``AsPathMatcher``) built with ``index=`` starts with every one of those
  tables warm, so the hot loop is pure lookups;
* :func:`verify_table <repro.core.parallel.verify_table>` ships the
  artifact to workers instead of letting each worker re-derive it
  (``fork``: built pre-fork, the flat planes shared copy-on-write;
  ``spawn``: pickled once per worker);
* :func:`get_or_compile` persists the artifact under
  ``~/.cache/rpslyzer/`` keyed by the IR content digest, so later runs
  over the same IR start warm too (``rpslyzer compile`` /
  ``--no-index-cache`` are the CLI knobs).

The on-disk envelope (format 2) is *flat*: a JSON header describing the
trie planes, the plane bytes 16-aligned, then one pickle blob for the
residual tables.  :func:`load_index` maps the file with ``mmap`` and
casts the planes to zero-copy memoryviews — warm start skips
deserializing the largest tables entirely, and the pages stay shared
between every process mapping the same artifact.  The mapping holds a
file descriptor until :meth:`CompiledIndex.close` releases it (Session
close / index eviction call this for indexes they own).

Everything in the artifact is produced by the *same* resolution code the
lazy path runs on demand, so verification over a compiled index is
bit-identical to the lazy path — ``tests/test_compiled_index.py`` checks
this differentially, including under injected worker death.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import mmap
import os
import pickle
import tempfile
import time
from array import array
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.aspath_match import AsPathMatcher, CompiledAsPathRegex
from repro.core.prefixtrie import RouteTrie
from repro.core.query import (
    AsSetResolution,
    QueryEngine,
    ResolvedRouteSet,
    _byref_allowed,
)
from repro.ir import serialize
from repro.ir.json_io import ir_to_jsonable  # noqa: F401 - registers IR classes
from repro.ir.model import Ir
from repro.net.prefix import Prefix, PrefixError
from repro.obs import get_registry
from repro.rpsl.aspath import AsPathRegexNode
from repro.rpsl.filter import Filter, FilterAsPathRegex, FilterAsSet, FilterRouteSet
from repro.rpsl.names import NameKind
from repro.rpsl.peering import PeerAsSet, Peering, PeeringSetRef
from repro.rpsl.walk import iter_as_expr_nodes, iter_filter_nodes, iter_policy_factors

__all__ = [
    "INDEX_FORMAT",
    "CompiledIndex",
    "IndexCacheError",
    "compile_index",
    "patch_index",
    "ir_digest",
    "default_cache_dir",
    "index_cache_path",
    "save_index",
    "load_index",
    "get_or_compile",
]

# Bump whenever the artifact layout (or the dataclasses inside it) changes
# incompatibly; mismatched cache files are recompiled, never half-read.
# Format 2: flat mmap-able envelope (magic + JSON header + aligned plane
# region + residual pickle) replacing the format-1 whole-pickle envelope.
INDEX_FORMAT = "rpslyzer-compiled-index/2"

_MAGIC = b"RPSLIDX2"
_ALIGN = 16  # plane alignment; mmap bases are page-aligned so this holds
_MAX_HEADER_BYTES = 1 << 24


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


class IndexCacheError(RuntimeError):
    """A cache file exists but cannot be used (format/digest mismatch)."""


class _MmapResource:
    """The mmap behind a loaded artifact plus every exported view.

    ``mmap.mmap`` dups the file descriptor internally, so the mapping —
    not the ``open()`` handle, which closes right after mapping — is what
    pins an fd per loaded artifact.  ``close()`` releases the views first
    (an exported memoryview keeps the map alive) and then the map.
    """

    __slots__ = ("_mapped", "_views")

    def __init__(self, mapped: mmap.mmap, views: list):
        self._mapped = mapped
        self._views = views

    def close(self) -> None:
        views, self._views = self._views, []
        for view in views:
            view.release()
        mapped, self._mapped = self._mapped, None
        if mapped is not None:
            try:
                mapped.close()
            except BufferError:  # a caller still holds a sub-view
                pass


@dataclass(slots=True)
class CompiledIndex:
    """Every query-engine table, materialized eagerly from one IR.

    Instances are treated as immutable once built: engines adopting one
    copy the memo-cache dicts (cheap, shallow) and share the read-only
    route trie, so a single artifact can back the parent's serial
    fallback and every worker simultaneously.  An index loaded from the
    disk cache keeps its planes mapped from the file; ``close()``
    releases the mapping (and its file descriptor) and must only be
    called by the owner once no engine uses it anymore.
    """

    digest: str | None
    route_trie: RouteTrie
    as_set_byref: dict[str, set[int]]
    route_set_byref: dict[str, list]
    as_sets: dict[str, AsSetResolution]
    route_sets: dict[str, ResolvedRouteSet]
    peering_sets: dict[str, tuple[Peering, ...] | None]
    aspath_regexes: dict[AsPathRegexNode, CompiledAsPathRegex]
    compile_seconds: float = 0.0
    skipped_regexes: int = 0
    # Incremental-ingestion lineage: ``generation`` counts patch_index
    # applications since the from-scratch compile (0), ``serials`` is the
    # highest journal serial absorbed per source registry.
    generation: int = 0
    serials: dict = field(default_factory=dict)
    format: str = INDEX_FORMAT
    resource: _MmapResource | None = field(default=None, repr=False, compare=False)

    def stats(self) -> dict:
        """Entry counts per table (for logs, manifests, and tests)."""
        trie_stats = self.route_trie.stats()
        return {
            "route_index": trie_stats["prefixes"],
            "origins": trie_stats["origins"],
            "trie_nodes": trie_stats["nodes"],
            "plane_bytes": trie_stats["plane_bytes"],
            "as_sets": len(self.as_sets),
            "route_sets": len(self.route_sets),
            "peering_sets": len(self.peering_sets),
            "aspath_regexes": len(self.aspath_regexes),
            "skipped_regexes": self.skipped_regexes,
            "compile_seconds": self.compile_seconds,
        }

    def close(self) -> None:
        """Release the mmap behind a cache-loaded artifact (idempotent).

        No-op for an index compiled in memory.  After closing, the trie
        planes are gone — every engine adopting this index must be done.
        """
        resource, self.resource = self.resource, None
        if resource is None:
            return
        self.route_trie.detach()
        resource.close()

    def __getstate__(self):
        # The mmap resource never travels: pickling (spawn workers,
        # re-saving) materializes the trie planes into arrays instead.
        return {
            f.name: getattr(self, f.name)
            for f in dataclasses.fields(self)
            if f.name != "resource"
        }

    def __setstate__(self, state):
        for name, value in state.items():
            setattr(self, name, value)
        self.resource = None


@dataclass(slots=True)
class _Referenced:
    """Set names and regex nodes collected from every policy AST."""

    as_sets: set[str] = field(default_factory=set)
    route_sets: set[str] = field(default_factory=set)
    peering_sets: set[str] = field(default_factory=set)
    regexes: list[AsPathRegexNode] = field(default_factory=list)
    _seen_regexes: set[AsPathRegexNode] = field(default_factory=set)

    def add_filter(self, node: Filter) -> None:
        for inner in iter_filter_nodes(node):
            if isinstance(inner, FilterAsSet) and not inner.any_member:
                self.as_sets.add(inner.name)
            elif isinstance(inner, FilterRouteSet) and not inner.any_member:
                self.route_sets.add(inner.name)
            elif isinstance(inner, FilterAsPathRegex):
                if inner.regex not in self._seen_regexes:
                    self._seen_regexes.add(inner.regex)
                    self.regexes.append(inner.regex)

    def add_peering(self, peering: Peering) -> None:
        for inner in iter_as_expr_nodes(peering.as_expr):
            if isinstance(inner, PeerAsSet):
                self.as_sets.add(inner.name)
            elif isinstance(inner, PeeringSetRef):
                self.peering_sets.add(inner.name)


def _collect_references(ir: Ir) -> _Referenced:
    """Every set name and regex any verification check could resolve.

    Referenced-but-unrecorded names matter too: their (negative)
    resolutions are memoized by the lazy engine, so the compiled artifact
    carries them as well.
    """
    refs = _Referenced()
    refs.as_sets.update(ir.as_sets)
    refs.route_sets.update(ir.route_sets)
    refs.peering_sets.update(ir.peering_sets)
    for aut_num in ir.aut_nums.values():
        for rule in (*aut_num.imports, *aut_num.exports):
            for factor in iter_policy_factors(rule.expr):
                refs.add_filter(factor.filter)
                for peering_action in factor.peerings:
                    refs.add_peering(peering_action.peering)
    for filter_set in ir.filter_sets.values():
        if filter_set.filter is not None:
            refs.add_filter(filter_set.filter)
    for peering_set in ir.peering_sets.values():
        for peering in peering_set.peerings:
            refs.add_peering(peering)
    for route_set in ir.route_sets.values():
        for member in route_set.name_members:
            if member.kind is NameKind.AS_SET:
                refs.as_sets.add(member.name)
            elif member.kind is NameKind.ROUTE_SET:
                refs.route_sets.add(member.name)
    return refs


def compile_index(ir: Ir, *, digest: str | None = None) -> CompiledIndex:
    """Compile an IR into a :class:`CompiledIndex` (the whole pass).

    The pass drives the ordinary :class:`QueryEngine`/:class:`AsPathMatcher`
    resolution code eagerly over every referenced name, then captures the
    resulting tables — so compiled lookups are the lazy path's answers,
    computed once.  The route trie is always built here (regardless of
    ``RPSLYZER_PREFIX_ENGINE``) and every resolved route-set's member
    index is frozen into its flat-plane form, so the artifact carries no
    lazy state.
    """
    registry = get_registry()
    started = time.perf_counter()
    with registry.span("compile/index"):
        engine = QueryEngine(ir, prefix_engine="trie")
        matcher = AsPathMatcher(engine)
        refs = _collect_references(ir)
        for name in sorted(refs.as_sets):
            engine.flatten_as_set(name)
        for name in sorted(refs.route_sets):
            engine.resolve_route_set(name)
        for name in sorted(refs.peering_sets):
            engine.resolve_peering_set(name)
        skipped = 0
        for node in refs.regexes:
            try:
                matcher.compile(node)
            except Exception:  # noqa: BLE001 - mirror the lazy path
                # A regex the matcher cannot lower compiles lazily (and
                # fails identically) if a check ever reaches it.
                skipped += 1
        for resolution in engine._route_set_cache.values():
            resolution.index.freeze()
        elapsed = time.perf_counter() - started
        index = CompiledIndex(
            digest=digest,
            route_trie=engine.routes,
            as_set_byref=engine._as_set_byref,
            route_set_byref=engine._route_set_byref,
            as_sets=engine._as_set_cache,
            route_sets=engine._route_set_cache,
            peering_sets=engine._peering_set_cache,
            aspath_regexes=matcher._compiled,
            compile_seconds=elapsed,
            skipped_regexes=skipped,
        )
    if registry.enabled:
        registry.gauge("index_compile_seconds").set(elapsed)
        for kind, count in index.stats().items():
            if kind in ("compile_seconds",):
                continue
            registry.gauge("index_entries", table=kind).set(count)
    return index


# -- incremental patching ----------------------------------------------------


def _reverse_reachable(seeds: set[str], reverse: dict[str, set[str]]) -> set[str]:
    """Every node that can reach a seed (seeds included): the dirty set."""
    dirty = set(seeds)
    stack = list(seeds)
    while stack:
        node = stack.pop()
        for parent in reverse.get(node, ()):
            if parent not in dirty:
                dirty.add(parent)
                stack.append(parent)
    return dirty


def _as_set_reverse_edges(old_ir: Ir, new_ir: Ir) -> dict[str, set[str]]:
    """member → owners over ``members_set``, across both snapshots.

    Both sides matter: an edge deleted this epoch still made the owner's
    cached closure depend on the member, and an edge added this epoch
    makes the new closure depend on it.
    """
    reverse: dict[str, set[str]] = {}
    for ir in (old_ir, new_ir):
        for owner, as_set in ir.as_sets.items():
            for member in as_set.members_set:
                reverse.setdefault(member, set()).add(owner)
    return reverse


def _route_set_reverse_edges(old_ir: Ir, new_ir: Ir) -> dict[str, set[str]]:
    """member → owners over nested route-set references, both snapshots.

    Only ROUTE_SET name members fold into the cached resolution; ASN and
    AS_SET members stay lazy (checked per query against the live trie and
    as-set caches), so they add no invalidation edges here.
    """
    reverse: dict[str, set[str]] = {}
    for ir in (old_ir, new_ir):
        for owner, route_set in ir.route_sets.items():
            for member in route_set.name_members:
                if member.kind is NameKind.ROUTE_SET:
                    reverse.setdefault(member.name, set()).add(owner)
    return reverse


def _route_entry_key(entry) -> tuple[Prefix, int, str]:
    """A route entry's wire key parsed into canonical in-memory form.

    Journal keys carry the prefix as a string; parsing canonicalizes
    host bits and IPv6 spellings so lookups below match ``route.prefix``
    instead of silently missing a live route spelled differently.  An
    unparseable key cannot name any route — ``apply_journal_to_ir``
    degrades such journals to the full recompile before this fast path
    runs — so raising loudly beats patching by a wrong key.
    """
    key = entry.key
    try:
        return (Prefix.parse(key[0]), key[1], key[2])
    except (PrefixError, TypeError, IndexError, AttributeError) as exc:
        raise ValueError(f"route entry key {key!r} is not patchable: {exc}") from exc


def patch_index(
    index: CompiledIndex,
    old_ir: Ir,
    new_ir: Ir,
    journal,
    *,
    digest: str | None = None,
) -> CompiledIndex:
    """Patch a compiled index with one journal's deltas (the fast path).

    ``journal`` is a :class:`repro.irr.journal.Journal` whose entries
    transform ``old_ir`` (the IR ``index`` was compiled from) into
    ``new_ir``; the caller is responsible for having validated the replay
    (:func:`repro.irr.journal.apply_journal_to_ir` returned a clean
    degradation report) — a degraded journal must recompile instead.

    The reverse-dependency walk touches only what the entries reference:

    * route entries become point inserts/deletes on a thawed
      :class:`~repro.core.prefixtrie.RouteTrie` (tombstones; plane
      rebuilds when load factor or tombstone ratio trips) — no other
      table depends on trie *contents*, so nothing else is invalidated;
    * members-by-reference rows are recomputed for exactly the set names
      the changed objects join (or stop joining);
    * cached as-set closures and route-set resolutions are evicted along
      reverse reachability — every cached name whose sweep could have
      seen a changed object — and re-resolved by the ordinary engine
      code, so patched entries are bit-identical to a fresh compile's;
    * non-route object churn re-runs the cheap policy-AST reference walk
      so newly referenced names/regexes get resolved too.

    The result is a fresh :class:`CompiledIndex` (generation + 1, serials
    advanced, digest chained over the journal content) sharing unchanged
    tables with ``index``; the input index is not mutated and never keeps
    its mmap — planes are materialized so the caller can close the old
    artifact immediately after swapping.
    """
    registry = get_registry()
    started = time.perf_counter()
    with registry.span("compile/patch"):
        entries = list(journal)
        route_entries = [e for e in entries if e.cls == "route"]
        named_entries = [e for e in entries if e.cls != "route"]
        changed: dict[str, set] = {}
        for entry in named_entries:
            changed.setdefault(entry.cls, set()).add(entry.key)

        # -- members-by-reference: which set names need recomputing -------
        as_byref_dirty: set[str] = set(changed.get("as-set", ()))
        for entry in named_entries:
            if entry.cls != "aut-num":
                continue
            old_aut = old_ir.aut_nums.get(entry.key)
            if old_aut is not None:
                as_byref_dirty.update(old_aut.member_of)
            if entry.obj is not None:
                as_byref_dirty.update(entry.obj.member_of)
        rs_byref_dirty: set[str] = set(changed.get("route-set", ()))
        for entry in route_entries:
            if entry.obj is not None:
                rs_byref_dirty.update(entry.obj.member_of)
        route_keys = [_route_entry_key(e) for e in route_entries]
        retired = {
            key
            for key, e in zip(route_keys, route_entries)
            if e.action in ("DEL", "MOD")
        }
        if retired:
            # Old-side member_of for retired routes: one pass, origin-int
            # prefiltered so the common row costs a set probe, not a key.
            retired_origins = {key[1] for key in retired}
            for route in old_ir.route_objects:
                if route.member_of and route.origin in retired_origins:
                    if (route.prefix, route.origin, route.source) in retired:
                        rs_byref_dirty.update(route.member_of)

        as_set_byref = index.as_set_byref
        if as_byref_dirty:
            as_set_byref = dict(as_set_byref)
            for name in as_byref_dirty:
                as_set_byref.pop(name, None)
            targets = {
                name: set() for name in as_byref_dirty if name in new_ir.as_sets
            }
            if targets:
                for aut_num in new_ir.aut_nums.values():
                    for set_name in aut_num.member_of:
                        bucket = targets.get(set_name)
                        if bucket is None:
                            continue
                        as_set = new_ir.as_sets[set_name]
                        if _byref_allowed(as_set.mbrs_by_ref, aut_num.mnt_by):
                            bucket.add(aut_num.asn)
                for name, asns in targets.items():
                    if asns:
                        as_set_byref[name] = asns

        route_set_byref = index.route_set_byref
        rs_targets: dict[str, list] = {}
        if rs_byref_dirty:
            route_set_byref = dict(route_set_byref)
            for name in rs_byref_dirty:
                route_set_byref.pop(name, None)
            rs_targets = {
                name: [] for name in rs_byref_dirty if name in new_ir.route_sets
            }

        # -- route trie: point mutations on the touched pairs -------------
        # MODs keep their (prefix, origin) pair — the pair IS the key — so
        # presence in new_ir decides each touched pair's final trie state.
        # Pairs hold parsed Prefix values, never wire strings: a journal
        # may spell a prefix non-canonically (host bits set, alternate
        # IPv6 forms) and a string comparison would silently miss the
        # live route — deleting it from the trie while the IR keeps it.
        touched_pairs: set[tuple[Prefix, int]] = {
            (key[0], key[1]) for key in route_keys
        }
        present: set[tuple[Prefix, int]] = set()
        if touched_pairs or rs_targets:
            touched_origins = {origin for _, origin in touched_pairs}
            for route in new_ir.route_objects:
                if rs_targets and route.member_of:
                    for set_name in route.member_of:
                        bucket = rs_targets.get(set_name)
                        if bucket is None:
                            continue
                        route_set = new_ir.route_sets[set_name]
                        if _byref_allowed(route_set.mbrs_by_ref, route.mnt_by):
                            bucket.append(route.prefix)
                if route.origin in touched_origins:
                    pair = (route.prefix, route.origin)
                    if pair in touched_pairs:
                        present.add(pair)
            for name, prefixes in rs_targets.items():
                if prefixes:
                    route_set_byref[name] = prefixes

        trie = index.route_trie
        if touched_pairs or index.resource is not None:
            # Thaw before mutating — and also when the old planes are mmap
            # views, so the patched index never pins the old artifact's fd.
            trie = trie.thaw()
        for pair in sorted(touched_pairs):
            if pair in present:
                trie.insert_route(pair[0], pair[1])
            else:
                trie.remove_route(pair[0], pair[1])

        # -- closure invalidation: reverse reachability ---------------------
        as_seeds = set(changed.get("as-set", ())) | as_byref_dirty
        dirty_as = (
            _reverse_reachable(as_seeds, _as_set_reverse_edges(old_ir, new_ir))
            if as_seeds
            else set()
        )
        rs_seeds = set(changed.get("route-set", ())) | rs_byref_dirty
        dirty_rs = (
            _reverse_reachable(rs_seeds, _route_set_reverse_edges(old_ir, new_ir))
            if rs_seeds
            else set()
        )

        as_sets_cache = dict(index.as_sets)
        resolve_as = sorted(name for name in dirty_as if name in as_sets_cache)
        for name in resolve_as:
            del as_sets_cache[name]
        route_sets_cache = dict(index.route_sets)
        resolve_rs = sorted(name for name in dirty_rs if name in route_sets_cache)
        for name in resolve_rs:
            del route_sets_cache[name]
        peering_sets_cache = dict(index.peering_sets)
        resolve_ps = sorted(
            name
            for name in changed.get("peering-set", ())
            if name in peering_sets_cache
        )
        for name in resolve_ps:
            del peering_sets_cache[name]

        # -- re-resolve through the ordinary engine code -------------------
        base = dataclasses.replace(
            index,
            route_trie=trie,
            as_set_byref=as_set_byref,
            route_set_byref=route_set_byref,
            as_sets=as_sets_cache,
            route_sets=route_sets_cache,
            peering_sets=peering_sets_cache,
            resource=None,
        )
        engine = QueryEngine(new_ir, index=base)
        matcher = AsPathMatcher(engine, compiled=index.aspath_regexes)
        for name in resolve_as:
            engine.flatten_as_set(name)
        for name in resolve_rs:
            engine.resolve_route_set(name)
        for name in resolve_ps:
            engine.resolve_peering_set(name)
        skipped = index.skipped_regexes
        if named_entries:
            # Policy/set objects changed: re-walk the ASTs so names and
            # regexes referenced for the first time get resolved (already
            # cached names no-op).  Route-only journals skip this.
            refs = _collect_references(new_ir)
            for name in sorted(refs.as_sets):
                engine.flatten_as_set(name)
            for name in sorted(refs.route_sets):
                engine.resolve_route_set(name)
            for name in sorted(refs.peering_sets):
                engine.resolve_peering_set(name)
            skipped = 0
            for node in refs.regexes:
                try:
                    matcher.compile(node)
                except Exception:  # noqa: BLE001 - mirror compile_index
                    skipped += 1
        for resolution in engine._route_set_cache.values():
            resolution.index.freeze()

        if digest is None and index.digest is not None:
            digest = hashlib.sha256(
                (index.digest + journal.digest()).encode("utf-8")
            ).hexdigest()
        serials = dict(index.serials)
        serials.update(journal.serials())
        elapsed = time.perf_counter() - started
        patched = CompiledIndex(
            digest=digest,
            route_trie=engine.routes,
            as_set_byref=engine._as_set_byref,
            route_set_byref=engine._route_set_byref,
            as_sets=engine._as_set_cache,
            route_sets=engine._route_set_cache,
            peering_sets=engine._peering_set_cache,
            aspath_regexes=matcher._compiled,
            compile_seconds=elapsed,
            skipped_regexes=skipped,
            generation=index.generation + 1,
            serials=serials,
        )
    if registry.enabled:
        registry.gauge("delta_apply_seconds").set(elapsed)
        registry.gauge("index_generation").set(patched.generation)
    return patched


def ir_digest(ir: Ir) -> str:
    """The IR content digest the on-disk cache is keyed by.

    SHA-256 over the canonical JSON encoding — the same encoding
    ``rpslyzer parse`` exports — so the key survives re-serialization and
    never depends on in-memory identity.
    """
    return serialize.stable_digest(ir)


# -- the on-disk cache ------------------------------------------------------


def default_cache_dir() -> Path:
    """``$RPSLYZER_CACHE_DIR``, else ``$XDG_CACHE_HOME/rpslyzer``, else
    ``~/.cache/rpslyzer``."""
    override = os.environ.get("RPSLYZER_CACHE_DIR")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "rpslyzer"


def index_cache_path(digest: str, cache_dir: str | Path | None = None) -> Path:
    """Where the artifact for an IR digest lives in the cache."""
    directory = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    return directory / f"index-{digest[:32]}.pkl"


def _library_version() -> str:
    import repro

    return repro.__version__


def save_index(index: CompiledIndex, path: str | Path) -> None:
    """Persist an artifact atomically (write-temp-then-rename).

    Layout: ``RPSLIDX2`` magic, a little-endian header length, the JSON
    header (format / library version / IR digest / trie meta / plane
    directory), then the 16-aligned plane region with the residual
    pickle blob at its tail.  :func:`load_index` refuses anything whose
    magic, format, version, or digest does not match, so a stale cache
    can only ever cost a recompile.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    region = bytearray()
    plane_entries = []
    for name, typecode, plane in index.route_trie.export_planes():
        region += b"\x00" * (-len(region) % _ALIGN)
        data = plane.tobytes() if isinstance(plane, array) else bytes(plane)
        plane_entries.append(
            {"name": name, "fmt": typecode, "offset": len(region), "nbytes": len(data)}
        )
        region += data
    rest = {
        f.name: getattr(index, f.name)
        for f in dataclasses.fields(index)
        if f.name not in ("route_trie", "resource")
    }
    blob = pickle.dumps(rest, protocol=pickle.HIGHEST_PROTOCOL)
    region += b"\x00" * (-len(region) % _ALIGN)
    pickle_entry = {"offset": len(region), "nbytes": len(blob)}
    region += blob
    header = json.dumps(
        {
            "format": INDEX_FORMAT,
            "version": _library_version(),
            "digest": index.digest,
            "trie": index.route_trie.meta(),
            "planes": plane_entries,
            "pickle": pickle_entry,
        },
        separators=(",", ":"),
    ).encode("utf-8")
    lead = len(_MAGIC) + 8 + len(header)
    handle, temp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(handle, "wb") as stream:
            stream.write(_MAGIC)
            stream.write(len(header).to_bytes(8, "little"))
            stream.write(header)
            stream.write(b"\x00" * (_aligned(lead) - lead))
            stream.write(region)
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


def load_index(path: str | Path, expect_digest: str | None = None) -> CompiledIndex:
    """Load a persisted artifact, validating format, version, and digest.

    The file is ``mmap``'d and the trie planes become zero-copy
    memoryview casts over the mapping — near-zero deserialization, pages
    shared between processes.  The returned index owns the mapping;
    :meth:`CompiledIndex.close` releases it.
    """
    registry = get_registry()
    started = time.perf_counter()
    lead = len(_MAGIC) + 8
    stream = open(path, "rb")
    try:
        head = stream.read(lead)
        if len(head) < lead or head[: len(_MAGIC)] != _MAGIC:
            # Format-1 envelopes (plain pickle) land here too: recompile.
            raise IndexCacheError(f"{path}: not a compiled index (bad magic)")
        header_len = int.from_bytes(head[len(_MAGIC) :], "little")
        if not 0 < header_len <= _MAX_HEADER_BYTES:
            raise IndexCacheError(f"{path}: not a compiled index (bad header length)")
        raw_header = stream.read(header_len)
        try:
            header = json.loads(raw_header)
        except ValueError as exc:
            raise IndexCacheError(f"{path}: not a compiled index (bad header)") from exc
        if not isinstance(header, dict) or header.get("format") != INDEX_FORMAT:
            fmt = header.get("format") if isinstance(header, dict) else None
            raise IndexCacheError(f"{path}: not a compiled index (format={fmt!r})")
        if header.get("version") != _library_version():
            raise IndexCacheError(
                f"{path}: compiled by repro {header.get('version')!r}, "
                f"running {_library_version()!r}"
            )
        if expect_digest is not None and header.get("digest") != expect_digest:
            raise IndexCacheError(
                f"{path}: IR digest mismatch "
                f"(cached {header.get('digest')!r}, expected {expect_digest!r})"
            )
        mapped = mmap.mmap(stream.fileno(), 0, access=mmap.ACCESS_READ)
    finally:
        stream.close()
    root = memoryview(mapped)
    resource = _MmapResource(mapped, views := [root])
    try:
        region = _aligned(lead + header_len)
        planes = {}
        for entry in header["planes"]:
            start = region + entry["offset"]
            view = root[start : start + entry["nbytes"]].cast(entry["fmt"])
            views.append(view)
            planes[entry["name"]] = view
        blob = header["pickle"]
        start = region + blob["offset"]
        rest = pickle.loads(bytes(root[start : start + blob["nbytes"]]))
        trie = RouteTrie.from_planes(header["trie"], planes)
        index = CompiledIndex(route_trie=trie, resource=resource, **rest)
    except (KeyError, TypeError, ValueError, pickle.PickleError, EOFError) as exc:
        resource.close()
        raise IndexCacheError(f"{path}: corrupt compiled index ({exc})") from exc
    if registry.enabled:
        registry.gauge("index_load_seconds").set(time.perf_counter() - started)
        registry.gauge("index_mmap_bytes").set(len(mapped))
    return index


def get_or_compile(
    ir: Ir,
    *,
    digest: str | None = None,
    cache_dir: str | Path | None = None,
    use_cache: bool = True,
    refresh: bool = False,
) -> CompiledIndex:
    """The caching entry point: load the artifact for this IR or build it.

    ``digest`` defaults to :func:`ir_digest` of the IR.  With
    ``use_cache=False`` the pass always runs and nothing touches disk
    (the ``--no-index-cache`` escape hatch); ``refresh=True`` recompiles
    and overwrites an existing cache entry.  Cache I/O failures are never
    fatal — a corrupt or unwritable cache degrades to a recompile.
    """
    registry = get_registry()
    if digest is None:
        digest = ir_digest(ir)
    if not use_cache:
        return compile_index(ir, digest=digest)
    path = index_cache_path(digest, cache_dir)
    if not refresh:
        try:
            index = load_index(path, expect_digest=digest)
        except FileNotFoundError:
            pass
        except (IndexCacheError, pickle.PickleError, EOFError, OSError, ValueError):
            # Unusable cache entry: recompile and overwrite below.
            pass
        else:
            if registry.enabled:
                registry.counter("index_cache_total", result="hit").inc()
            return index
    if registry.enabled:
        registry.counter("index_cache_total", result="miss").inc()
    index = compile_index(ir, digest=digest)
    try:
        save_index(index, path)
    except OSError:
        pass  # read-only cache dir: the compile still succeeded
    return index
