"""The route verifier: Section 5's per-hop status classification.

For each BGP route ⟨P, A⟩ the verifier removes prepending, walks the path
from the origin, and for each adjacent pair ⟨X → Y⟩ checks X's export
rules and Y's import rules.  Every check is classified, in order, as:

1. **verified** — a rule strictly matches (peering covers the remote AS
   and the filter covers ⟨P, sub-path⟩ for the route's address family);
2. **skip** — the only potentially-matching rules use constructs the
   verifier does not evaluate (community filters, regex ASN ranges or
   same-pattern operators, rules that failed to parse);
3. **unrecorded** — information is missing from the IRRs (no aut-num, no
   rules in the checked direction, filters referencing zero-route ASes or
   undefined sets);
4. **relaxed** — a Section 5.1.1 filter relaxation applies;
5. **safelisted** — a Section 5.1.2 relationship safelist applies;
6. **unverified** — none of the above: a genuine mismatch.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass

from typing import TYPE_CHECKING

from repro.bgp.table import RouteEntry
from repro.bgp.topology import AsRelationships
from repro.core.aspath_match import AsPathMatcher
from repro.core.filter_match import MAX_ITEMS, Eval, FilterEvaluator, MatchContext, Val
from repro.core.peering_match import PeeringEvaluator
from repro.core.query import QueryEngine
from repro.core.report import HopReport, ItemKind, ReportItem, RouteReport
from repro.core.special import SpecialCaseChecker
from repro.core.status import VerifyStatus
from repro.ir.model import Ir
from repro.net.prefix import Prefix
from repro.obs import get_registry
from repro.obs.trace import RouteTrace, get_tracer
from repro.rpsl.aspath import regex_flags
from repro.rpsl.filter import Filter, FilterAsPathRegex, FilterCommunity
from repro.rpsl.policy import (
    PolicyExcept,
    PolicyExpr,
    PolicyRefine,
    PolicyRule,
    PolicyTerm,
)
from repro.rpsl.walk import iter_filter_nodes, iter_policy_factors

if TYPE_CHECKING:  # pragma: no cover - typing-only, avoids an import cycle
    from repro.core.compiled import CompiledIndex

__all__ = ["VerifyOptions", "Verifier", "rule_skip_census"]

_MAX_ITEMS = MAX_ITEMS  # single source of truth: repro.core.filter_match


@dataclass(frozen=True, slots=True)
class VerifyOptions:
    """Verification knobs.

    Defaults reproduce the paper; the ablation benchmarks flip
    ``relaxations``/``safelists`` off and the regex extensions on.
    """

    relaxations: bool = True
    safelists: bool = True
    handle_asn_ranges: bool = False
    handle_same_pattern: bool = False
    regex_product_cap: int = 65536
    # Match community(...) filters against observed community tags instead
    # of skipping the rule.  The paper skips (communities may be stripped
    # in flight); the synthetic world controls stripping, so this is an
    # ablation knob here.
    community_matches: bool = False
    # Hop-check memoization: the same ⟨direction, hop, prefix, sub-path⟩
    # recurs across collectors and peers; caching the classification is
    # what makes bulk verification amortize (0 disables).
    hop_cache_size: int = 1 << 20


@dataclass(slots=True)
class _RuleEval:
    """Evaluation of one rule (or policy sub-expression) for one route."""

    value: Val
    items: tuple[ReportItem, ...] = ()
    # Filters whose factor's peering matched but whose check failed — the
    # precondition for the relaxed-filter special cases.
    peer_matched_filters: tuple[Filter, ...] = ()


def _merge_filters(
    left: tuple[Filter, ...], right: tuple[Filter, ...]
) -> tuple[Filter, ...]:
    """Combine peer-matched filter lists, reusing a side when one is empty."""
    if not right:
        return left
    if not left:
        return right
    return (left + right)[:_MAX_ITEMS]


def _combine_or(left: _RuleEval, right: _RuleEval) -> _RuleEval:
    merged = Eval(left.value, left.items).or_(Eval(right.value, right.items))
    return _RuleEval(
        merged.value,
        merged.items,
        _merge_filters(left.peer_matched_filters, right.peer_matched_filters),
    )


def _combine_and(left: _RuleEval, right: _RuleEval) -> _RuleEval:
    merged = Eval(left.value, left.items).and_(Eval(right.value, right.items))
    return _RuleEval(
        merged.value,
        merged.items,
        _merge_filters(left.peer_matched_filters, right.peer_matched_filters),
    )


class _VerifierMetrics:
    """Pre-bound instruments for the verifier's hot path.

    Bound once per :class:`Verifier` so each hop check costs plain method
    calls, never a registry lookup.  A Verifier built under the null
    registry gets no ``_VerifierMetrics`` at all — the disabled cost is one
    ``is None`` branch per hop.
    """

    __slots__ = (
        "registry",
        "status",
        "cache_hits",
        "cache_misses",
        "cache_evictions",
        "latency",
        "routes",
    )

    def __init__(self, registry):
        self.registry = registry
        self.status = {
            status: registry.counter("verify_hops_total", status=status.label)
            for status in VerifyStatus
        }
        self.cache_hits = registry.counter("verify_hop_cache_total", result="hit")
        self.cache_misses = registry.counter("verify_hop_cache_total", result="miss")
        self.cache_evictions = registry.counter("verify_hop_cache_evictions_total")
        self.latency = registry.histogram("verify_hop_seconds")
        self.routes = registry.counter("verify_routes_total")

    def ignored(self, reason: str) -> None:
        self.registry.counter("verify_routes_ignored_total", reason=reason).inc()


class Verifier:
    """Verifies BGP routes against the policies of one (merged) IR.

    ``index`` (a :class:`~repro.core.compiled.CompiledIndex` from
    :func:`repro.core.compiled.compile_index`) pre-seeds the query engine
    and the AS-path matcher, turning their hot-loop resolutions into pure
    lookups; without one, everything resolves lazily as before.  Either
    way the prefix checks run on the engine's radix-trie backend (one
    ancestor walk per ``AS<n>``/route-set match; see
    :mod:`repro.core.prefixtrie`) — with an index, the trie planes may be
    memoryviews over the mmap'd cache artifact, shared page-for-page with
    every pool worker.  ``RPSLYZER_PREFIX_ENGINE=naive`` falls back to
    the pre-trie dict walk; the differential suites prove both paths
    produce bit-identical reports.
    """

    def __init__(
        self,
        ir: Ir,
        relationships: AsRelationships,
        options: VerifyOptions | None = None,
        index: "CompiledIndex | None" = None,
    ):
        self.ir = ir
        self.relationships = relationships
        self.options = options if options is not None else VerifyOptions()
        self.query = QueryEngine(ir, index=index)
        matcher = AsPathMatcher(
            self.query,
            self.options.regex_product_cap,
            compiled=None if index is None else index.aspath_regexes,
        )
        self.filters = FilterEvaluator(
            self.query,
            matcher,
            handle_asn_ranges=self.options.handle_asn_ranges,
            handle_same_pattern=self.options.handle_same_pattern,
            community_matches=self.options.community_matches,
        )
        self.peerings = PeeringEvaluator(self.query)
        self.special = SpecialCaseChecker(self.query, relationships)
        self._hop_cache: dict[tuple, HopReport] = {}
        self.hop_cache_hits = 0
        self.hop_cache_misses = 0
        self.hop_cache_evictions = 0
        registry = get_registry()
        self._metrics = _VerifierMetrics(registry) if registry.enabled else None
        # Same zero-cost trick as the metrics: a verifier built under the
        # null tracer pays one ``is None`` branch per route, nothing more.
        tracer = get_tracer()
        self._tracer = tracer if tracer.enabled else None

    # -- route-level entry points ---------------------------------------

    def verify_entry(self, entry: RouteEntry) -> RouteReport:
        """Verify one observed route; hops are reported origin side first."""
        tracer = self._tracer
        trace = tracer.route(entry) if tracer is not None else None
        report = RouteReport(entry=entry)
        metrics = self._metrics
        if metrics is not None:
            metrics.routes.inc()
        if entry.as_set is not None:
            report.ignored = "as-set-path"
        else:
            path = entry.deprepended_path()
            if len(path) <= 1:
                report.ignored = "single-as"
        if report.ignored is not None:
            if metrics is not None:
                metrics.ignored(report.ignored)
            if trace is not None:
                tracer.commit(trace, report)
            return report
        if trace is None or not trace.head:
            # Tail-sampled routes need no per-hop capture: commit() reads
            # everything it emits from the finished report's hops.
            check = self.check
        else:

            def check(direction, from_asn, to_asn, ctx, _trace=trace):
                return self._traced_check(_trace, direction, from_asn, to_asn, ctx)

        for index in range(len(path) - 2, -1, -1):
            exporter = path[index + 1]
            importer = path[index]
            sub_path = path[index + 1 :]
            ctx_export = MatchContext(
                prefix=entry.prefix,
                as_path=sub_path,
                peer_asn=importer,
                self_asn=exporter,
                communities=entry.communities,
            )
            report.hops.append(check("export", exporter, importer, ctx_export))
            ctx_import = MatchContext(
                prefix=entry.prefix,
                as_path=sub_path,
                peer_asn=exporter,
                self_asn=importer,
                communities=entry.communities,
            )
            report.hops.append(check("import", exporter, importer, ctx_import))
        if trace is not None:
            tracer.commit(trace, report)
        return report

    def verify_route(
        self, prefix: Prefix | str, as_path: tuple[int, ...], collector: str = "manual"
    ) -> RouteReport:
        """Convenience wrapper for ad-hoc ⟨prefix, AS-path⟩ checks."""
        if isinstance(prefix, str):
            prefix = Prefix.parse(prefix)
        entry = RouteEntry(
            collector=collector, peer_asn=as_path[0], prefix=prefix, as_path=as_path
        )
        return self.verify_entry(entry)

    # -- per-hop classification -------------------------------------------

    def check(
        self, direction: str, from_asn: int, to_asn: int, ctx: MatchContext
    ) -> HopReport:
        """Classify one import or export of one hop (memoized).

        The cache key is the full decision context — direction, the hop's
        endpoints, the prefix, and the sub-path toward the origin — so a
        hit is exact, and reports are immutable so sharing is safe.
        """
        metrics = self._metrics
        cache_size = self.options.hop_cache_size
        if cache_size:
            key = (direction, from_asn, to_asn, ctx.prefix, ctx.as_path, ctx.communities)
            cached = self._hop_cache.get(key)
            if cached is not None:
                self.hop_cache_hits += 1
                if metrics is not None:
                    metrics.cache_hits.inc()
                    metrics.status[cached.status].inc()
                return cached
            self.hop_cache_misses += 1
            report = self._checked(direction, from_asn, to_asn, ctx, metrics)
            if metrics is not None:
                metrics.cache_misses.inc()
                metrics.status[report.status].inc()
            if len(self._hop_cache) >= cache_size:
                self._hop_cache.clear()
                self.hop_cache_evictions += 1
                if metrics is not None:
                    metrics.cache_evictions.inc()
            self._hop_cache[key] = report
            return report
        report = self._checked(direction, from_asn, to_asn, ctx, metrics)
        if metrics is not None:
            metrics.status[report.status].inc()
        return report

    def _traced_check(
        self,
        trace: RouteTrace,
        direction: str,
        from_asn: int,
        to_asn: int,
        ctx: MatchContext,
    ) -> HopReport:
        """One hop check with provenance capture (see :mod:`repro.obs.trace`).

        Wraps :meth:`check` without changing what it computes: detects
        whether the memo cache answered (a hit skips filter evaluation, so
        no deep chain exists for it) and, for head-sampled routes, collects
        the filter-evaluation path from the evaluator.
        """
        hits_before = self.hop_cache_hits
        chain: list[str] | None = [] if trace.deep else None
        if chain is not None:
            self.filters.begin_trace(chain)
        try:
            report = self.check(direction, from_asn, to_asn, ctx)
        finally:
            if chain is not None:
                self.filters.end_trace()
        trace.add_hop(report, self.hop_cache_hits > hits_before, chain)
        return report

    def _checked(
        self,
        direction: str,
        from_asn: int,
        to_asn: int,
        ctx: MatchContext,
        metrics: _VerifierMetrics | None,
    ) -> HopReport:
        """Run an uncached check, timing it when metrics are enabled."""
        if metrics is None:
            return self._check_uncached(direction, from_asn, to_asn, ctx)
        started = time.perf_counter()
        report = self._check_uncached(direction, from_asn, to_asn, ctx)
        metrics.latency.observe(time.perf_counter() - started)
        return report

    def _check_uncached(
        self, direction: str, from_asn: int, to_asn: int, ctx: MatchContext
    ) -> HopReport:
        subject_asn = to_asn if direction == "import" else from_asn
        remote_asn = from_asn if direction == "import" else to_asn
        aut_num = self.ir.aut_nums.get(subject_asn)

        if aut_num is None:
            return self._finish(
                direction,
                from_asn,
                to_asn,
                VerifyStatus.UNRECORDED,
                (ReportItem.of(ItemKind.UNRECORDED_AUT_NUM, asn=subject_asn),),
            )

        source = aut_num.source or None
        rules = aut_num.imports if direction == "import" else aut_num.exports
        if not rules:
            items = [ReportItem.of(ItemKind.UNRECORDED_NO_RULES, asn=subject_asn)]
            if aut_num.bad_rules:
                # The only policy text present failed to parse: skip.
                return self._finish(
                    direction,
                    from_asn,
                    to_asn,
                    VerifyStatus.SKIP,
                    (ReportItem.of(ItemKind.SKIPPED_BAD_RULE),),
                    source=source,
                )
            return self._finish(
                direction, from_asn, to_asn, VerifyStatus.UNRECORDED, tuple(items),
                source=source,
            )

        version = ctx.prefix.version
        overall = _RuleEval(Val.FALSE)
        for rule_index, rule in enumerate(rules):
            if not any(afi.matches_version(version) for afi in rule.effective_afis()):
                continue
            evaluated = self._eval_expr(rule.expr, ctx, version, remote_asn)
            overall = _combine_or(overall, evaluated)
            if overall.value is Val.TRUE:
                return self._finish(
                    direction, from_asn, to_asn, VerifyStatus.VERIFIED, (),
                    peer_matched=True, rule_index=rule_index, source=source,
                )

        if overall.value is Val.SKIP:
            return self._finish(
                direction, from_asn, to_asn, VerifyStatus.SKIP, overall.items,
                source=source,
            )
        if aut_num.bad_rules:
            items = overall.items + (ReportItem.of(ItemKind.SKIPPED_BAD_RULE),)
            return self._finish(
                direction, from_asn, to_asn, VerifyStatus.SKIP, items[:_MAX_ITEMS],
                source=source,
            )
        if overall.value is Val.UNREC:
            return self._finish(
                direction, from_asn, to_asn, VerifyStatus.UNRECORDED, overall.items,
                source=source,
            )

        peer_matched = bool(overall.peer_matched_filters)
        if self.options.relaxations:
            relaxed = self.special.relaxed_item(
                direction, subject_asn, remote_asn, ctx, overall.peer_matched_filters
            )
            if relaxed is not None:
                items = (overall.items + (relaxed,))[-_MAX_ITEMS:]
                return self._finish(
                    direction, from_asn, to_asn, VerifyStatus.RELAXED, items,
                    peer_matched=peer_matched, source=source,
                )

        if self.options.safelists:
            safelisted = self.special.safelist_item(
                direction, from_asn, to_asn, aut_num, ctx
            )
            if safelisted is not None:
                items = (overall.items + (safelisted,))[-_MAX_ITEMS:]
                return self._finish(
                    direction, from_asn, to_asn, VerifyStatus.SAFELISTED, items,
                    peer_matched=peer_matched, source=source,
                )

        return self._finish(
            direction, from_asn, to_asn, VerifyStatus.UNVERIFIED, overall.items,
            peer_matched=peer_matched, source=source,
        )

    def _finish(
        self,
        direction: str,
        from_asn: int,
        to_asn: int,
        status: VerifyStatus,
        items: tuple[ReportItem, ...],
        peer_matched: bool = False,
        rule_index: int | None = None,
        source: str | None = None,
    ) -> HopReport:
        return HopReport(
            direction=direction,
            from_asn=from_asn,
            to_asn=to_asn,
            status=status,
            items=items[:_MAX_ITEMS],
            peer_matched=peer_matched,
            rule_index=rule_index,
            rule_source=source,
        )

    # -- policy expression evaluation ------------------------------------

    def _eval_expr(
        self, expr: PolicyExpr, ctx: MatchContext, version: int, remote_asn: int
    ) -> _RuleEval:
        if isinstance(expr, PolicyTerm):
            return self._eval_term(expr, ctx, remote_asn)
        if isinstance(expr, PolicyRefine):
            term_eval = self._eval_expr(expr.term, ctx, version, remote_asn)
            if expr.afis and not any(afi.matches_version(version) for afi in expr.afis):
                # The refinement does not constrain this address family.
                return term_eval
            rest_eval = self._eval_expr(expr.rest, ctx, version, remote_asn)
            return _combine_and(term_eval, rest_eval)
        if isinstance(expr, PolicyExcept):
            term_eval = self._eval_expr(expr.term, ctx, version, remote_asn)
            if expr.afis and not any(afi.matches_version(version) for afi in expr.afis):
                return term_eval
            # EXCEPT hands matching routes to the rest-policy with different
            # actions; for acceptance both sides admit routes.
            rest_eval = self._eval_expr(expr.rest, ctx, version, remote_asn)
            return _combine_or(term_eval, rest_eval)
        raise TypeError(f"unknown policy expression {expr!r}")

    def _eval_term(self, term: PolicyTerm, ctx: MatchContext, remote_asn: int) -> _RuleEval:
        result = _RuleEval(Val.FALSE)
        for factor in term.factors:
            peering_eval = Eval(Val.FALSE)
            for peering_action in factor.peerings:
                peering_eval = peering_eval.or_(
                    self.peerings.evaluate(peering_action.peering, remote_asn)
                )
                if peering_eval.value is Val.TRUE:
                    break
            if peering_eval.value is Val.FALSE:
                result = _combine_or(
                    result, _RuleEval(Val.FALSE, peering_eval.items)
                )
                continue
            filter_eval = self.filters.evaluate(factor.filter, ctx)
            pm_filters: tuple[Filter, ...] = ()
            if peering_eval.value is Val.TRUE and filter_eval.value is not Val.TRUE:
                pm_filters = (factor.filter,)
            combined = peering_eval.and_(filter_eval)
            result = _combine_or(
                result, _RuleEval(combined.value, combined.items, pm_filters)
            )
            if result.value is Val.TRUE:
                return result
        return result


def rule_skip_census(ir: Ir) -> Counter:
    """Count rules by the reason the verifier cannot fully evaluate them.

    Reproduces the Section 5 accounting: the paper's RPSLyzer skips 114 of
    822,207 rules (regex ASN ranges, same-pattern operators, community
    filters) plus rules that fail to parse.
    """
    census: Counter = Counter()
    for aut_num in ir.aut_nums.values():
        census["unparsed"] += len(aut_num.bad_rules)
        census["total"] += len(aut_num.bad_rules)
        for rule in (*aut_num.imports, *aut_num.exports):
            census["total"] += 1
            reasons = _rule_skip_reasons(rule)
            if reasons:
                census["skipped"] += 1
                for reason in reasons:
                    census[reason] += 1
    census["skipped"] += census["unparsed"]
    return census


def _rule_skip_reasons(rule: PolicyRule) -> set[str]:
    reasons: set[str] = set()
    for factor in iter_policy_factors(rule.expr):
        for node in iter_filter_nodes(factor.filter):
            if isinstance(node, FilterCommunity):
                reasons.add("community-filter")
            elif isinstance(node, FilterAsPathRegex):
                has_range, has_same_pattern = regex_flags(node.regex)
                if has_range:
                    reasons.add("regex-asn-range")
                if has_same_pattern:
                    reasons.add("regex-same-pattern")
    return reasons
