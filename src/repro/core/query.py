"""The query engine: indexed, cached resolution of IR references.

Verification evaluates millions of filter checks; this module provides the
data structures that keep each check near-constant-time:

* a per-family compressed radix trie over every declared ⟨prefix, origin⟩
  pair (:class:`~repro.core.prefixtrie.RouteTrie`): exact, ancestor
  (``AS<n>`` / ``^-`` / ``^+`` / ``^n-m``), and descendant queries are one
  walk that visits only the ancestors actually present — replacing the
  earlier per-length masked-key enumeration of up to 33 (IPv4) or 129
  (IPv6) hash probes per check;
* trie-backed :class:`PrefixOpIndex` for route-set members with range
  operators, probed the same way;
* memoized recursive flattening of *as-sets* (with loop detection and
  depth measurement — the Section 4 statistics reuse both);
* lazy resolution of *route-sets*, *peering-sets*, and *filter-sets*,
  including RFC 2622 "members by reference" via ``member-of``/
  ``mbrs-by-ref``.

The pre-trie dict engine survives as
:class:`~repro.core.prefixtrie.NaiveRouteIndex`; pass
``prefix_engine="naive"`` (or set ``RPSLYZER_PREFIX_ENGINE=naive``) to
force it — the differential suites prove both produce bit-identical
verification output.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.prefixtrie import NaiveRouteIndex, OpTrie, RouteTrie, RouteTrieBuilder
from repro.ir.model import Ir

if TYPE_CHECKING:  # pragma: no cover - typing-only, avoids an import cycle
    from repro.core.compiled import CompiledIndex
from repro.net.prefix import Prefix, RangeOp, RangeOpKind
from repro.rpsl.filter import Filter, FilterPrefixSet
from repro.rpsl.names import NameKind
from repro.rpsl.peering import Peering

__all__ = ["AsSetResolution", "ResolvedRouteSet", "PrefixOpIndex", "QueryEngine", "BUILTIN_FILTER_SETS"]

_PrefixKey = tuple[int, int, int]  # (version, network, length)

_ENGINE_ENV = "RPSLYZER_PREFIX_ENGINE"


def _key(prefix: Prefix) -> _PrefixKey:
    return (prefix.version, prefix.network, prefix.length)


class PrefixOpIndex:
    """Declared prefixes with range operators, probed by one trie walk.

    Entries accumulate in a plain dict while the set is being resolved;
    the first probe (or an explicit :meth:`freeze`) lowers them into an
    :class:`~repro.core.prefixtrie.OpTrie` whose flat planes pickle
    compactly inside the compiled artifact.  The legacy dict view stays
    reachable through :attr:`entries` (reconstructed on demand), and the
    pre-trie ancestor-enumeration algorithm through
    :meth:`_matches_naive` — the property suite compares both.
    """

    __slots__ = ("_pending", "_trie")

    def __init__(self, entries: dict[_PrefixKey, list[RangeOp]] | None = None):
        self._pending: dict[_PrefixKey, list[RangeOp]] | None = (
            {key: list(ops) for key, ops in entries.items()} if entries else {}
        )
        self._trie: OpTrie | None = None

    @property
    def entries(self) -> dict[_PrefixKey, list[RangeOp]]:
        """The ``{(version, net, len): [RangeOp, ...]}`` mapping (compat)."""
        if self._pending is None:
            rebuilt: dict[_PrefixKey, list[RangeOp]] = {}
            for key, op in self._trie.iter_entries():
                rebuilt.setdefault(key, []).append(op)
            self._pending = rebuilt
        return self._pending

    def add(self, prefix: Prefix, op: RangeOp) -> None:
        """Register one declared prefix with its operator."""
        self.entries.setdefault(_key(prefix), []).append(op)
        self._trie = None

    def freeze(self) -> OpTrie:
        """Lower the entries into their trie (idempotent)."""
        if self._trie is None:
            self._trie = OpTrie.from_entries(self._pending or {})
        return self._trie

    def matches(self, prefix: Prefix, override: RangeOp | None = None) -> bool:
        """Whether any declared entry covers ``prefix`` under its operator.

        ``override`` replaces every stored operator (an outer ``^op``
        applied to the whole set).
        """
        trie = self._trie
        if trie is None:
            if not self._pending:
                return False
            trie = self.freeze()
        if override is not None and override.kind is RangeOpKind.NONE:
            override = None  # a no-op override: invariant across the walk
        return trie.matches(prefix.version, prefix.network, prefix.length, override)

    def _matches_naive(self, prefix: Prefix, override: RangeOp | None = None) -> bool:
        """The pre-trie ancestor enumeration, kept as the test oracle."""
        entries = self.entries
        if not entries:
            return False
        announced = prefix.length
        if override is not None and override.kind is RangeOpKind.NONE:
            override = None
        for key, declared_length in _ancestor_keys(prefix):
            ops = entries.get(key)
            if ops is None:
                continue
            if override is not None:
                if override.allows(declared_length, announced):
                    return True
                continue
            for op in ops:
                if op.allows(declared_length, announced):
                    return True
        return False

    def __len__(self) -> int:
        if self._trie is not None and self._pending is None:
            return self._trie.op_count
        return sum(len(ops) for ops in self.entries.values())

    def __eq__(self, other) -> bool:
        if not isinstance(other, PrefixOpIndex):
            return NotImplemented
        return self.entries == other.entries

    __hash__ = None  # mutable (mirrors the earlier eq dataclass)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PrefixOpIndex(<{len(self)} ops>)"

    def __getstate__(self):
        # Pickle the flat trie planes, not the dict of operator objects:
        # this is what shrinks route-set members inside the artifact.
        return {"trie": self.freeze()}

    def __setstate__(self, state):
        self._pending = None
        self._trie = state["trie"]


def _ancestor_keys(prefix: Prefix):
    """Yield ``(version, masked-network, length)`` for every covering length.

    Only the naive/differential paths enumerate ancestors this way now;
    the trie visits just the lengths actually present.
    """
    version = prefix.version
    max_length = prefix.max_length
    network = prefix.network
    for length in range(prefix.length, -1, -1):
        shift = max_length - length
        yield (version, (network >> shift) << shift, length), length


@dataclass(frozen=True, slots=True)
class AsSetResolution:
    """A fully flattened *as-set*."""

    members: frozenset[int]
    unrecorded: tuple[str, ...]
    has_loop: bool
    depth: int
    contains_any: bool
    recorded: bool  # whether the set itself exists in the IR


@dataclass(frozen=True, slots=True)
class ResolvedRouteSet:
    """A *route-set* resolved to an index plus lazily-checked references."""

    index: PrefixOpIndex
    asn_members: tuple[tuple[int, RangeOp], ...]
    as_set_members: tuple[tuple[str, RangeOp], ...]
    unrecorded: tuple[str, ...]
    contains_any: bool
    recorded: bool


# RFC 2622 reserves well-known filter-set names; IRRs rarely carry their
# definitions, so the engine falls back to these (IPv4 martians per RFC 6890).
_MARTIAN_PREFIXES = (
    "0.0.0.0/8",
    "10.0.0.0/8",
    "100.64.0.0/10",
    "127.0.0.0/8",
    "169.254.0.0/16",
    "172.16.0.0/12",
    "192.0.0.0/24",
    "192.0.2.0/24",
    "192.168.0.0/16",
    "198.18.0.0/15",
    "198.51.100.0/24",
    "203.0.113.0/24",
    "224.0.0.0/4",
    "240.0.0.0/4",
)


def _builtin_martian_filter() -> Filter:
    plus = RangeOp(RangeOpKind.PLUS)
    members = tuple((Prefix.parse(text), plus) for text in _MARTIAN_PREFIXES)
    return FilterPrefixSet(members)


BUILTIN_FILTER_SETS: dict[str, Filter] = {
    "FLTR-MARTIAN": _builtin_martian_filter(),
    "FLTR-BOGONS": _builtin_martian_filter(),
    "FLTR-MARTIANS": _builtin_martian_filter(),
}


def _build_routes(ir: Ir, prefix_engine: str | None):
    """The route backend for one IR: a frozen trie, or the naive dicts."""
    kind = prefix_engine or os.environ.get(_ENGINE_ENV) or "trie"
    if kind == "naive":
        routes = NaiveRouteIndex()
        for route in ir.route_objects:
            routes.add(route.prefix, route.origin)
        return routes
    if kind != "trie":
        raise ValueError(f"unknown prefix engine {kind!r} (expected 'trie' or 'naive')")
    builder = RouteTrieBuilder()
    for route in ir.route_objects:
        builder.add(route.prefix, route.origin)
    return builder.build()


class QueryEngine:
    """Indexed access to one (usually merged) IR.

    ``index`` (a :class:`~repro.core.compiled.CompiledIndex`) pre-seeds
    every table and memo cache from the compile-once pass: the read-only
    route trie is adopted as-is (its flat planes may be memoryviews over
    the mmap'd artifact), while the memo caches are shallow-copied so
    lazy fills never mutate the shared artifact.

    ``prefix_engine`` selects the route backend — ``"trie"`` (default) or
    ``"naive"`` (the pre-trie dict walk, for differential testing); the
    ``RPSLYZER_PREFIX_ENGINE`` environment variable sets the default.
    """

    def __init__(
        self,
        ir: Ir,
        max_depth: int = 64,
        index: "CompiledIndex | None" = None,
        prefix_engine: str | None = None,
    ):
        self.ir = ir
        self.max_depth = max_depth
        self._compat_route_index: dict[_PrefixKey, set[int]] | None = None
        self._compat_origin_prefixes: dict[int, set[_PrefixKey]] | None = None
        if index is not None:
            self.routes = index.route_trie
            self._as_set_byref = index.as_set_byref
            self._route_set_byref = index.route_set_byref
            self._as_set_cache = dict(index.as_sets)
            self._route_set_cache = dict(index.route_sets)
            self._peering_set_cache = dict(index.peering_sets)
            return

        # The route backend: every declared ⟨prefix, origin⟩ pair.
        self.routes: RouteTrie | NaiveRouteIndex = _build_routes(ir, prefix_engine)

        # Members-by-reference: aut-nums joining as-sets, routes joining
        # route-sets, each gated by the set's mbrs-by-ref maintainer list.
        self._as_set_byref: dict[str, set[int]] = {}
        for aut_num in ir.aut_nums.values():
            for set_name in aut_num.member_of:
                as_set = ir.as_sets.get(set_name)
                if as_set is not None and _byref_allowed(as_set.mbrs_by_ref, aut_num.mnt_by):
                    self._as_set_byref.setdefault(set_name, set()).add(aut_num.asn)
        self._route_set_byref: dict[str, list[Prefix]] = {}
        for route in ir.route_objects:
            for set_name in route.member_of:
                route_set = ir.route_sets.get(set_name)
                if route_set is not None and _byref_allowed(route_set.mbrs_by_ref, route.mnt_by):
                    self._route_set_byref.setdefault(set_name, []).append(route.prefix)

        self._as_set_cache: dict[str, AsSetResolution] = {}
        self._route_set_cache: dict[str, ResolvedRouteSet] = {}
        self._peering_set_cache: dict[str, tuple[Peering, ...] | None] = {}

    # -- route objects --------------------------------------------------

    @property
    def route_index(self) -> dict[_PrefixKey, set[int]]:
        """``{(version, net, len): {origins}}`` — compatibility view.

        The naive backend exposes its live dict; the trie reconstructs
        one lazily (and caches it) for tools that iterate the table.
        Hot-path checks go through the backend directly.
        """
        routes = self.routes
        if isinstance(routes, NaiveRouteIndex):
            return routes.route_index
        cached = self._compat_route_index
        if cached is None:
            cached = self._compat_route_index = {
                key: set(origins) for key, origins in routes.iter_exact()
            }
        return cached

    @property
    def origin_prefixes(self) -> dict[int, set[_PrefixKey]]:
        """``{asn: {(version, net, len)}}`` — compatibility view."""
        routes = self.routes
        if isinstance(routes, NaiveRouteIndex):
            return routes.origin_prefixes
        cached = self._compat_origin_prefixes
        if cached is None:
            cached = self._compat_origin_prefixes = {
                asn: set(routes.origin_keys(asn)) for asn in routes.origins()
            }
        return cached

    def has_any_routes(self, asn: int) -> bool:
        """Whether the AS appears as *origin* of at least one route object."""
        return self.routes.has_origin(asn)

    def asn_route_match(self, asn: int, prefix: Prefix, op: RangeOp) -> bool:
        """Whether ``asn`` registered a route object matching ``prefix^op``."""
        return self.routes.match_origin(
            asn, prefix.version, prefix.network, prefix.length, op
        )

    def origins_of(self, prefix: Prefix) -> frozenset[int]:
        """Origin ASes of route objects exactly matching ``prefix``."""
        return self.routes.exact_origins(prefix.version, prefix.network, prefix.length)

    def as_set_route_match(self, name: str, prefix: Prefix, op: RangeOp) -> bool:
        """Whether any member of the as-set registered a matching route."""
        resolution = self.flatten_as_set(name)
        version, network, length = prefix.version, prefix.network, prefix.length
        if resolution.contains_any:
            return self.routes.has_exact(version, network, length) or self._any_cover(
                prefix, op
            )
        members = resolution.members
        if not members:
            return False
        return self.routes.match_members(members, version, network, length, op)

    def _any_cover(self, prefix: Prefix, op: RangeOp) -> bool:
        return self.routes.match_any(prefix.version, prefix.network, prefix.length, op)

    # -- as-sets ---------------------------------------------------------

    def flatten_as_set(self, name: str) -> AsSetResolution:
        """Flatten an as-set to its member ASNs (memoized, loop-safe)."""
        cached = self._as_set_cache.get(name)
        if cached is not None:
            return cached
        recorded = name in self.ir.as_sets
        members: set[int] = set()
        unrecorded: set[str] = set()
        contains_any = False
        has_loop = False

        # Reachability sweep over the set graph.
        reachable: list[str] = []
        seen: set[str] = set()
        stack = [name]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            as_set = self.ir.as_sets.get(current)
            if as_set is None:
                if current != name or not recorded:
                    unrecorded.add(current)
                continue
            reachable.append(current)
            members.update(as_set.members_asn)
            members.update(self._as_set_byref.get(current, ()))
            contains_any = contains_any or as_set.contains_any
            stack.extend(as_set.members_set)

        has_loop = self._detect_loop(name)
        depth = self._set_depth(name)
        resolution = AsSetResolution(
            members=frozenset(members),
            unrecorded=tuple(sorted(unrecorded)),
            has_loop=has_loop,
            depth=depth,
            contains_any=contains_any,
            recorded=recorded,
        )
        self._as_set_cache[name] = resolution
        return resolution

    def _detect_loop(self, name: str) -> bool:
        """Whether a cycle is reachable from ``name`` in the as-set graph."""
        color: dict[str, int] = {}  # 1 = on stack, 2 = done

        def visit(node: str) -> bool:
            state = color.get(node)
            if state == 1:
                return True
            if state == 2:
                return False
            color[node] = 1
            as_set = self.ir.as_sets.get(node)
            if as_set is not None:
                for child in as_set.members_set:
                    if visit(child):
                        color[node] = 2
                        return True
            color[node] = 2
            return False

        return visit(name)

    def _set_depth(self, name: str) -> int:
        """Longest as-set nesting chain from ``name`` (cycles don't extend).

        A set with only ASN members has depth 1.  Within a cycle the back
        edge contributes nothing, so mutually recursive sets get the depth
        of their acyclic expansion — an approximation noted in DESIGN.md.
        """
        memo: dict[str, int] = {}
        on_stack: set[str] = set()

        def depth_of(node: str) -> int:
            if node in memo:
                return memo[node]
            if node in on_stack:
                return 0
            as_set = self.ir.as_sets.get(node)
            if as_set is None:
                return 0
            on_stack.add(node)
            best = 0
            for child in as_set.members_set:
                best = max(best, depth_of(child))
            on_stack.discard(node)
            memo[node] = best + 1
            return best + 1

        result = depth_of(name)
        return result

    # -- route-sets --------------------------------------------------------

    def resolve_route_set(self, name: str) -> ResolvedRouteSet:
        """Resolve a route-set; nested sets are folded, AS refs stay lazy."""
        cached = self._route_set_cache.get(name)
        if cached is not None:
            return cached
        recorded = name in self.ir.route_sets
        index = PrefixOpIndex()
        asn_members: list[tuple[int, RangeOp]] = []
        as_set_members: list[tuple[str, RangeOp]] = []
        unrecorded: set[str] = set()
        contains_any = False
        seen: set[str] = set()
        stack: list[tuple[str, RangeOp]] = [(name, RangeOp())]
        while stack:
            current, outer = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            route_set = self.ir.route_sets.get(current)
            if route_set is None:
                if current != name or not recorded:
                    unrecorded.add(current)
                continue
            for prefix, op in route_set.prefix_members:
                index.add(prefix, op.compose(outer))
            for prefix in self._route_set_byref.get(current, ()):
                index.add(prefix, outer)
            for member in route_set.name_members:
                effective = member.op.compose(outer)
                if member.kind is NameKind.ROUTE_SET:
                    stack.append((member.name, effective))
                elif member.kind is NameKind.AS_SET:
                    as_set_members.append((member.name, effective))
                elif member.kind is NameKind.ASN:
                    asn_members.append((int(member.name[2:]), effective))
                elif member.kind is NameKind.RS_ANY:
                    contains_any = True
        resolution = ResolvedRouteSet(
            index=index,
            asn_members=tuple(asn_members),
            as_set_members=tuple(as_set_members),
            unrecorded=tuple(sorted(unrecorded)),
            contains_any=contains_any,
            recorded=recorded,
        )
        self._route_set_cache[name] = resolution
        return resolution

    def route_set_match(self, name: str, prefix: Prefix, op: RangeOp) -> bool:
        """Whether ``prefix`` matches the (resolved) route-set under ``op``."""
        resolution = self.resolve_route_set(name)
        if resolution.contains_any:
            return True
        override = op if op.kind is not RangeOpKind.NONE else None
        if resolution.index.matches(prefix, override):
            return True
        for asn, member_op in resolution.asn_members:
            if self.asn_route_match(asn, prefix, member_op.compose(op)):
                return True
        for set_name, member_op in resolution.as_set_members:
            if self.as_set_route_match(set_name, prefix, member_op.compose(op)):
                return True
        return False

    # -- peering-sets and filter-sets ---------------------------------------

    def resolve_peering_set(self, name: str) -> tuple[Peering, ...] | None:
        """The peerings of a peering-set, or None if unrecorded."""
        if name in self._peering_set_cache:
            return self._peering_set_cache[name]
        peering_set = self.ir.peering_sets.get(name)
        result = tuple(peering_set.peerings) if peering_set is not None else None
        self._peering_set_cache[name] = result
        return result

    def resolve_filter_set(self, name: str) -> Filter | None:
        """The filter of a filter-set; well-known names have built-ins."""
        filter_set = self.ir.filter_sets.get(name)
        if filter_set is not None and filter_set.filter is not None:
            return filter_set.filter
        return BUILTIN_FILTER_SETS.get(name)


def _byref_allowed(mbrs_by_ref: list[str], mnt_by: list[str]) -> bool:
    """RFC 2622 members-by-reference gate: ANY, or a shared maintainer."""
    if not mbrs_by_ref:
        return False
    if "ANY" in mbrs_by_ref:
        return True
    return bool(set(mbrs_by_ref) & set(mnt_by))
