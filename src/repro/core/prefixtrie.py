"""Compressed radix tries over interned prefixes (the verification hot path).

Per-route verification spends most of its time answering two questions:
*"did this AS register a route object covering this announced prefix?"*
and *"does this route-set member cover it under its range operator?"*.
The pre-trie engine answered both with an ancestor **enumeration**: up to
33 (IPv4) or 129 (IPv6) masked-key constructions and hash probes per
query, each allocating a fresh tuple.  This module replaces that with a
pair of cooperating flat structures so a query touches only the ancestor
lengths actually *declared* on its branch:

* a **length-compression mask** per family — one 64-bit word per
  top-``lmk``-bit bucket (IPv4) or per family (IPv6) recording which
  declared lengths exist on that branch.  The candidate set for a query
  is one table read and one AND; typical branches carry 1–3 lengths
  where the enumeration probed all 33/129.
* an **open-addressing hash plane** mapping ⟨masked network, length⟩ to
  the prefix's payload span — linear probing at load factor ≤ 0.5, one
  or two slot reads per candidate length, no allocation.
* a **path-compressed binary radix trie** (classic patricia node
  planes), kept for the queries the hash cannot answer: descendant
  enumeration (``covered``) and full entry iteration.

Everything is laid out as flat parallel planes (``array`` buffers off
the GC-tracked heap, or ``memoryview`` casts over an ``mmap`` region
when loaded from the disk cache):

* per family (IPv4/IPv6): node planes ``plen``/``net_lo``[/``net_hi``]
  (the node's prefix, stored right-shifted so comparisons need no
  masking), ``left``/``right`` child ids, and a ``payload`` id; the
  match-acceleration planes ``lenmask`` and ``hlo``/[``hhi``/]
  ``hpl``/``hval`` (hash slots);
* a payload arena: per-prefix origin spans (``span_off`` into a sorted
  ``origins`` plane) for the route trie, per-prefix range-operator spans
  for the :class:`OpTrie`;
* per-origin offset spans (``origin_ids`` + ``okey_*`` arenas) so
  "every prefix this AS registered" is one bisect plus a span read.

Because the planes are plain buffers they pickle compactly, share
copy-on-write under ``fork``, and — via the v2 cache envelope in
:mod:`repro.core.compiled` — map straight out of the artifact file with
near-zero deserialization.

:class:`NaiveRouteIndex` preserves the pre-trie dict algorithm verbatim.
It is the differential oracle: the hypothesis suite
(``tests/test_prefixtrie.py``), the trie-vs-legacy identity tests, and
the ``BENCH_prefix_engine`` benchmarks all compare against it.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left

from repro.net.prefix import Prefix, RangeOp, RangeOpKind

__all__ = [
    "NaiveRouteIndex",
    "OpTrie",
    "RouteTrie",
    "RouteTrieBuilder",
]

_MAX_LEN = {4: 32, 6: 128}
_U64 = (1 << 64) - 1

# Range operators as stored in op planes.  EXACT and RANGE evaluate
# identically (low <= announced <= high); both codes are kept so
# iter_entries() can reconstruct the operator kind faithfully.
_OP_NONE, _OP_MINUS, _OP_PLUS, _OP_EXACT, _OP_RANGE = range(5)
_KIND_TO_CODE = {
    RangeOpKind.NONE: _OP_NONE,
    RangeOpKind.MINUS: _OP_MINUS,
    RangeOpKind.PLUS: _OP_PLUS,
    RangeOpKind.EXACT: _OP_EXACT,
    RangeOpKind.RANGE: _OP_RANGE,
}
_CODE_TO_KIND = {code: kind for kind, code in _KIND_TO_CODE.items()}

# Bounds are stored in a 16-bit plane; announced lengths never exceed 128,
# so clamping to 255 is exact for allows() while keeping hostile ^n-m
# operators (RangeOp.parse accepts any integer) from overflowing it.
_OP_BOUND_CAP = 255


# -- build-time nodes -------------------------------------------------------
#
# During construction nodes are plain 5-lists [net, plen, payload, left,
# right] with *full* (unshifted, host-bits-masked) networks; linearization
# converts to the shifted flat-plane form.


def _mask(net: int, plen: int, maxlen: int) -> int:
    shift = maxlen - plen
    return (net >> shift) << shift


def _insert(node, net: int, plen: int, maxlen: int, update):
    """Patricia insert; returns the (possibly new) subtree root.

    ``update(existing_payload_or_None)`` produces the node's new payload —
    the one hook the two builders differ in.
    """
    if node is None:
        return [net, plen, update(None), None, None]
    nnet, nplen = node[0], node[1]
    diff = net ^ nnet
    common = maxlen - diff.bit_length() if diff else maxlen
    cpl = min(plen, nplen, common)
    if cpl == nplen:
        if cpl == plen:  # same prefix: merge payloads
            node[2] = update(node[2])
            return node
        # the node is a proper ancestor of the key: descend by the next bit
        bit = (net >> (maxlen - cpl - 1)) & 1
        child = _insert(node[4] if bit else node[3], net, plen, maxlen, update)
        if bit:
            node[4] = child
        else:
            node[3] = child
        return node
    if cpl == plen:
        # the key is a proper ancestor of the node: new node becomes parent
        fresh = [net, plen, update(None), None, None]
        bit = (nnet >> (maxlen - cpl - 1)) & 1
        if bit:
            fresh[4] = node
        else:
            fresh[3] = node
        return fresh
    # diverge below cpl: split with a non-terminal internal node
    split = [_mask(net, cpl, maxlen), cpl, None, None, None]
    fresh = [net, plen, update(None), None, None]
    if (nnet >> (maxlen - cpl - 1)) & 1:
        split[4], split[3] = node, fresh
    else:
        split[3], split[4] = node, fresh
    return split


class _Family:
    """One address family's frozen node planes (``hi`` is None for IPv4).

    Besides the patricia node planes, a family carries the match
    acceleration layer built by :func:`_build_fast`:

    * ``lenmask`` — the length-compression table (IPv4 only): one 64-bit
      word per top-``lmk``-bit bucket, bit ``pl`` set iff some stored
      prefix of length ``pl`` lies on that branch.  ``lmall`` is the
      family-global union (the only mask IPv6 keeps — 129 possible
      lengths exceed one word, and real route6 tables declare only a
      handful of lengths anyway).
    * ``hlo``/[``hhi``/]``hpl``/``hval`` — an open-addressing hash over
      ⟨masked network, length⟩ with linear probing; ``hval`` holds the
      payload id (-1 marks an empty slot).  ``hbits == 0`` (empty
      family) means no table.

    A candidate length taken from the mask still ends in a hash probe,
    so a mask bit set by a *different* network in the same bucket can
    never produce a false positive — the masks are purely a pruning
    layer and the hash is the ground truth.

    Thawed (mutable) families additionally maintain ``live``/``tomb``
    slot counts for the hash plane: point deletes leave tombstones
    (``hval == -2`` with an impossible length in ``hpl``) that the probe
    loops walk through, and the counts decide when the plane is rebuilt
    from the node planes instead.
    """

    __slots__ = (
        "maxlen",
        "root",
        "plen",
        "lo",
        "hi",
        "left",
        "right",
        "payload",
        "lmk",
        "lmall",
        "lenmask",
        "hbits",
        "hshift",
        "hlo",
        "hhi",
        "hpl",
        "hval",
        "live",
        "tomb",
    )

    def __init__(self, maxlen, root, plen, lo, hi, left, right, payload):
        self.maxlen = maxlen
        self.root = root
        self.plen = plen
        self.lo = lo
        self.hi = hi
        self.left = left
        self.right = right
        self.payload = payload
        self.lmk = 0
        self.lmall = 0
        self.lenmask = None
        self.hbits = 0
        self.hshift = 64
        self.hlo = None
        self.hhi = None
        self.hpl = None
        self.hval = None
        self.live = 0
        self.tomb = 0

    def __len__(self) -> int:
        return len(self.plen)


_LENMASK_MAX_BITS = 20
_LENMASK_MIN_PREFIXES = 16
_HASH_C = 0x9E3779B97F4A7C15
_HASH_P = 0xFF51AFD7ED558CCD
# Tombstone encoding for point deletes: the probe loops stop only on -1
# (truly empty), so a tombstoned slot must keep them walking while never
# matching a key — hence the impossible declared length in ``hpl``.
_TOMB = -2
_TOMB_PL = 255


def _attach_fast(fam: _Family, lmk: int, lmall: int, hbits: int, planes: dict, tag: str) -> None:
    """Wire pre-built acceleration planes (mmap views or arrays) in."""
    fam.lmk = lmk
    fam.lmall = lmall
    fam.lenmask = planes.get(f"{tag}.lenmask")
    fam.hbits = hbits
    fam.hshift = 64 - hbits
    fam.hlo = planes.get(f"{tag}.hlo")
    fam.hhi = planes.get(f"{tag}.hhi")
    fam.hpl = planes.get(f"{tag}.hpl")
    fam.hval = planes.get(f"{tag}.hval")


def _build_fast(fam: _Family, lmfactor: int = 4) -> None:
    """Build the family's match-acceleration planes (built once, persisted).

    One pass over the payload nodes fills the hash plane (sized to load
    factor ≤ 0.5) and the length-compression masks.  Prefixes shorter
    than the bucket width set their length bit in every bucket they
    cover, so any query bucket sees every ancestor length on its path.

    ``lmfactor`` trades mask-table memory for bucket sharpness: the
    table gets ``~lmfactor * prefixes`` words (capped at ``2**20``).
    The global route table uses a high factor — finer buckets mean
    fewer candidate lengths per query — while per-route-set op tries
    stay lean because a session holds thousands of them.
    """
    maxlen = fam.maxlen
    plen, lo, hi, payload = fam.plen, fam.lo, fam.hi, fam.payload
    entries = []
    for i in range(len(plen)):
        p = payload[i]
        if p < 0:
            continue
        pl = plen[i]
        snet = lo[i] if hi is None else ((hi[i] << 64) | lo[i])
        entries.append((snet << (maxlen - pl), pl, p))
    n = len(entries)
    if not n:
        return
    hbits = max(3, (2 * n - 1).bit_length())
    size = 1 << hbits
    hmask = size - 1
    hlo = array("Q", bytes(8 * size))
    hhi = array("Q", bytes(8 * size)) if maxlen > 64 else None
    hpl = array("B", bytes(size))
    hval = array("i", [-1]) * size
    lmk = 0
    lenmask = None
    if maxlen <= 64 and n >= _LENMASK_MIN_PREFIXES:
        lmk = min(_LENMASK_MAX_BITS, (lmfactor * n).bit_length(), maxlen)
        lenmask = array("Q", bytes(8 << lmk))
    lmall = 0
    for net, pl, p in entries:
        lmall |= 1 << pl
        if hhi is None:
            x = (net + pl * _HASH_P) & _U64
        else:
            x = ((net ^ (net >> 64)) + pl * _HASH_P) & _U64
        s = ((x * _HASH_C) & _U64) >> (64 - hbits)
        while hval[s] != -1:
            s = (s + 1) & hmask
        hlo[s] = net & _U64
        if hhi is not None:
            hhi[s] = net >> 64
        hpl[s] = pl
        hval[s] = p
        if lenmask is not None:
            if pl >= lmk:
                lenmask[net >> (maxlen - lmk)] |= 1 << pl
            else:
                start = (net >> (maxlen - lmk)) if pl else 0
                bit = 1 << pl
                for b in range(start, start + (1 << (lmk - pl))):
                    lenmask[b] |= bit
    fam.lmk = lmk
    fam.lmall = lmall
    fam.lenmask = lenmask
    fam.hbits = hbits
    fam.hshift = 64 - hbits
    fam.hlo = hlo
    fam.hhi = hhi
    fam.hpl = hpl
    fam.hval = hval
    fam.live = n
    fam.tomb = 0


def _rebuild_fast(fam: _Family, lmfactor: int) -> None:
    """Rebuild the acceleration planes from the node planes.

    Point mutation triggers this when the hash plane's load factor would
    exceed 0.5 or tombstones dominate: the node planes are the ground
    truth (deleted prefixes carry ``payload == -1``), so one
    :func:`_build_fast` pass resharpens the masks and drops every
    tombstone at once.
    """
    fam.lmk = 0
    fam.lmall = 0
    fam.lenmask = None
    fam.hbits = 0
    fam.hshift = 64
    fam.hlo = None
    fam.hhi = None
    fam.hpl = None
    fam.hval = None
    fam.live = 0
    fam.tomb = 0
    _build_fast(fam, lmfactor)


def _node_point_insert(fam: _Family, net: int, plen: int) -> int:
    """Insert ⟨net, plen⟩ into the node planes; return its node index.

    The append-only mirror of build-time :func:`_insert`: existing rows
    are never moved, new rows (the key, plus a split node when the walk
    diverges mid-edge) go at the end and only parent child-pointers are
    rewritten — concurrent readers of a *different* (frozen) trie object
    are unaffected because mutation requires a thawed copy.
    """
    maxlen = fam.maxlen
    plens, lo, hi = fam.plen, fam.lo, fam.hi
    left, right, payload = fam.left, fam.right, fam.payload

    def append(net_: int, plen_: int) -> int:
        idx = len(plens)
        snet = net_ >> (maxlen - plen_) if plen_ else 0
        plens.append(plen_)
        lo.append(snet & _U64)
        if hi is not None:
            hi.append(snet >> 64)
        left.append(-1)
        right.append(-1)
        payload.append(-1)
        return idx

    if fam.root < 0:
        fam.root = append(net, plen)
        return fam.root
    parent, side = -1, 0
    i = fam.root
    while True:
        npl = plens[i]
        snet = lo[i] if hi is None else ((hi[i] << 64) | lo[i])
        nnet = snet << (maxlen - npl) if npl else 0
        diff = net ^ nnet
        common = maxlen - diff.bit_length() if diff else maxlen
        cpl = min(plen, npl, common)
        if cpl == npl:
            if cpl == plen:
                return i  # exact node already present (maybe internal)
            bit = (net >> (maxlen - cpl - 1)) & 1
            child = right[i] if bit else left[i]
            if child < 0:
                fresh = append(net, plen)
                if bit:
                    right[i] = fresh
                else:
                    left[i] = fresh
                return fresh
            parent, side = i, bit
            i = child
            continue
        if cpl == plen:
            # the key is a proper ancestor of the node: key becomes parent
            top = fresh = append(net, plen)
            if (nnet >> (maxlen - cpl - 1)) & 1:
                right[top] = i
            else:
                left[top] = i
        else:
            # diverge below cpl: split with a non-terminal internal node
            top = append(_mask(net, cpl, maxlen), cpl)
            fresh = append(net, plen)
            if (nnet >> (maxlen - cpl - 1)) & 1:
                right[top] = i
                left[top] = fresh
            else:
                left[top] = i
                right[top] = fresh
        if parent < 0:
            fam.root = top
        elif side:
            right[parent] = top
        else:
            left[parent] = top
        return fresh


def _node_find(fam: _Family, net: int, plen: int) -> int:
    """The node index storing exactly ⟨net, plen⟩, or -1."""
    maxlen = fam.maxlen
    plens, lo, hi, left, right = fam.plen, fam.lo, fam.hi, fam.left, fam.right
    i = fam.root
    while i >= 0:
        npl = plens[i]
        if npl > plen:
            return -1
        stored = lo[i] if hi is None else ((hi[i] << 64) | lo[i])
        if (net >> (maxlen - npl) if npl else 0) != stored:
            return -1
        if npl == plen:
            return i
        i = right[i] if (net >> (maxlen - npl - 1)) & 1 else left[i]
    return -1


def _hash_point_set(fam: _Family, net: int, pl: int, payload_id: int) -> None:
    """Insert or repoint one ⟨masked net, length⟩ key in the hash plane.

    An existing key has its payload id rewritten in place; a new key
    claims the first tombstone on its probe path (or the terminating
    empty slot).  The caller guarantees headroom — load factor including
    tombstones stays ≤ 0.5 via :func:`_rebuild_fast`.
    """
    hlo, hhi, hpl, hval = fam.hlo, fam.hhi, fam.hpl, fam.hval
    hmask = (1 << fam.hbits) - 1
    if hhi is None:
        x = (net + pl * _HASH_P) & _U64
    else:
        x = ((net ^ (net >> 64)) + pl * _HASH_P) & _U64
    s = ((x * _HASH_C) & _U64) >> fam.hshift
    nlo = net & _U64
    nhi = net >> 64
    free = -1
    while hval[s] != -1:
        if hval[s] == _TOMB:
            if free < 0:
                free = s
        elif hpl[s] == pl and hlo[s] == nlo and (hhi is None or hhi[s] == nhi):
            hval[s] = payload_id
            return
        s = (s + 1) & hmask
    if free >= 0:
        s = free
        fam.tomb -= 1
    hlo[s] = nlo
    if hhi is not None:
        hhi[s] = nhi
    hpl[s] = pl
    hval[s] = payload_id
    fam.live += 1


def _hash_point_delete(fam: _Family, net: int, pl: int) -> None:
    """Tombstone one key: probes keep walking, key-match never fires."""
    hlo, hhi, hpl, hval = fam.hlo, fam.hhi, fam.hpl, fam.hval
    hmask = (1 << fam.hbits) - 1
    if hhi is None:
        x = (net + pl * _HASH_P) & _U64
    else:
        x = ((net ^ (net >> 64)) + pl * _HASH_P) & _U64
    s = ((x * _HASH_C) & _U64) >> fam.hshift
    nlo = net & _U64
    nhi = net >> 64
    while hval[s] != -1:
        if (
            hval[s] != _TOMB
            and hpl[s] == pl
            and hlo[s] == nlo
            and (hhi is None or hhi[s] == nhi)
        ):
            hval[s] = _TOMB
            hpl[s] = _TOMB_PL
            fam.tomb += 1
            fam.live -= 1
            return
        s = (s + 1) & hmask


def _mask_point_insert(fam: _Family, net: int, pl: int) -> None:
    """Set the length bit for a new prefix in the pruning masks.

    Deletes deliberately leave mask bits stale (a stale bit costs one
    wasted probe, never a wrong answer), but inserts MUST set them — a
    missing bit would hide the entry from every mask-pruned query.
    """
    fam.lmall |= 1 << pl
    lmk = fam.lmk
    if not lmk or fam.lenmask is None:
        return
    bit = 1 << pl
    if pl >= lmk:
        fam.lenmask[net >> (fam.maxlen - lmk)] |= bit
    else:
        start = (net >> (fam.maxlen - lmk)) if pl else 0
        for b in range(start, start + (1 << (lmk - pl))):
            fam.lenmask[b] |= bit


def _linearize(root, maxlen: int, payload_out) -> _Family:
    """Flatten a build-time node tree into parallel planes (preorder).

    ``payload_out(payload_obj) -> payload id`` appends the payload to the
    caller's arena and returns its span id.
    """
    plen = array("B")
    lo = array("Q")
    hi = array("Q") if maxlen > 64 else None
    left = array("i")
    right = array("i")
    payload = array("i")
    if root is None:
        return _Family(maxlen, -1, plen, lo, hi, left, right, payload)
    stack = [(root, -1, 0)]
    while stack:
        node, parent, side = stack.pop()
        idx = len(plen)
        if parent >= 0:
            if side:
                right[parent] = idx
            else:
                left[parent] = idx
        pl = node[1]
        snet = node[0] >> (maxlen - pl) if pl else 0
        plen.append(pl)
        lo.append(snet & _U64)
        if hi is not None:
            hi.append(snet >> 64)
        left.append(-1)
        right.append(-1)
        payload.append(payload_out(node[2]) if node[2] is not None else -1)
        if node[3] is not None:
            stack.append((node[3], idx, 0))
        if node[4] is not None:
            stack.append((node[4], idx, 1))
    return _Family(maxlen, 0, plen, lo, hi, left, right, payload)


def _plane_bytes(plane) -> int:
    return len(plane) * plane.itemsize


def _materialize(typecode: str, plane) -> array:
    """A picklable ``array`` copy of a plane (no-op for built planes)."""
    if isinstance(plane, array):
        return plane
    fresh = array(typecode)
    fresh.frombytes(bytes(plane))
    return fresh


# -- the route trie ---------------------------------------------------------


class RouteTrie:
    """All declared ⟨prefix, origin⟩ pairs of one IR, frozen into planes.

    Query methods take the prefix unpacked (``version, network, length``)
    so the hot loop never touches attribute descriptors mid-walk.  The
    planes are either ``array`` objects (built in memory) or
    ``memoryview`` casts over the mmap'd cache artifact — both index to
    plain ints at the same cost.
    """

    _FAMILY_PLANES = {
        "plen": "B",
        "lo": "Q",
        "hi": "Q",
        "left": "i",
        "right": "i",
        "payload": "i",
        "lenmask": "Q",
        "hlo": "Q",
        "hhi": "Q",
        "hpl": "B",
        "hval": "i",
    }
    _ARENA_PLANES = {
        "span_off": "i",
        "origins": "Q",
        "origin_ids": "Q",
        "okey_off": "i",
        "okey_ver": "B",
        "okey_plen": "B",
        "okey_hi": "Q",
        "okey_lo": "Q",
    }

    __slots__ = (
        "_fam4",
        "_fam6",
        "_span_off",
        "_origins",
        "_origin_ids",
        "_okey_off",
        "_okey_ver",
        "_okey_plen",
        "_okey_hi",
        "_okey_lo",
        "_okey_extra",
        "_okey_dead",
        "_origin_set",
        "_prefix_count",
    )

    def __init__(
        self,
        fam4: _Family,
        fam6: _Family,
        span_off,
        origins,
        origin_ids,
        okey_off,
        okey_ver,
        okey_plen,
        okey_hi,
        okey_lo,
        prefix_count: int,
    ):
        self._fam4 = fam4
        self._fam6 = fam6
        self._span_off = span_off
        self._origins = origins
        self._origin_ids = origin_ids
        self._okey_off = okey_off
        self._okey_ver = okey_ver
        self._okey_plen = okey_plen
        self._okey_hi = okey_hi
        self._okey_lo = okey_lo
        # Point-mutation overlays for the origin→keys side index: the
        # flat arrays stay frozen (shifting the offset column per delete
        # costs O(origins) in Python — the old delta-path bottleneck) and
        # per-origin additions/removals accumulate here, merged on read
        # and folded back into arrays on export.  Empty on frozen tries.
        self._okey_extra: dict[int, set] = {}
        self._okey_dead: dict[int, set] = {}
        self._origin_set: frozenset | None = None
        self._prefix_count = prefix_count

    # -- hot-path queries -------------------------------------------------

    def has_origin(self, asn: int) -> bool:
        """Whether the AS originates at least one declared route."""
        origin_set = self._origin_set
        if origin_set is None:
            # Built per process on first use (frozensets don't live in
            # planes); idempotent, so sharing across engines is safe.
            # origins() folds in any point-mutation overlays.
            origin_set = self._origin_set = frozenset(self.origins())
        return asn in origin_set

    def _exact_payload(self, fam: _Family, qnet: int, qlen: int) -> int:
        if not (fam.lmall >> qlen) & 1:
            return -1
        shift = fam.maxlen - qlen
        qnet = (qnet >> shift) << shift  # tolerate set host bits, like the walk did
        hlo, hhi, hval = fam.hlo, fam.hhi, fam.hval
        hmask = (1 << fam.hbits) - 1
        hpl = fam.hpl
        if hhi is None:
            x = (qnet + qlen * _HASH_P) & _U64
        else:
            x = ((qnet ^ (qnet >> 64)) + qlen * _HASH_P) & _U64
        s = ((x * _HASH_C) & _U64) >> fam.hshift
        nlo = qnet & _U64
        nhi = qnet >> 64
        while hval[s] != -1:
            if (
                hpl[s] == qlen
                and hlo[s] == nlo
                and (hhi is None or hhi[s] == nhi)
            ):
                return hval[s]
            s = (s + 1) & hmask
        return -1

    def has_exact(self, version: int, qnet: int, qlen: int) -> bool:
        """Whether some route object declares exactly this prefix."""
        fam = self._fam4 if version == 4 else self._fam6
        return self._exact_payload(fam, qnet, qlen) >= 0

    def exact_origins(self, version: int, qnet: int, qlen: int) -> frozenset:
        """Origin ASes of route objects exactly matching the prefix."""
        fam = self._fam4 if version == 4 else self._fam6
        p = self._exact_payload(fam, qnet, qlen)
        if p < 0:
            return frozenset()
        off = self._span_off
        return frozenset(self._origins[off[p] : off[p + 1]])

    @staticmethod
    def _op_limit(op: RangeOp, qlen: int) -> int:
        """The max declared length ``op`` admits for this announced length.

        ``op.allows(pl, qlen)`` reduces to ``pl <= limit`` over ancestors:
        MINUS admits strict ancestors (``pl < qlen``), PLUS admits any
        cover (``pl <= qlen``), and EXACT/RANGE depend only on the
        announced length — when ``qlen`` falls outside their bounds no
        declared prefix can qualify and the query is skipped outright
        (returns -1).  Hoisted so the candidate-length mask is truncated
        with one AND instead of a per-candidate method call.
        """
        kind = op.kind
        if kind is RangeOpKind.MINUS:
            return qlen - 1
        if kind is RangeOpKind.PLUS:
            return qlen
        return qlen if op.low <= qlen <= op.high else -1

    def match_origin(self, asn: int, version: int, qnet: int, qlen: int, op: RangeOp) -> bool:
        """Whether ``asn`` declared a covering prefix whose ``op`` admits
        the announced length — a masked handful of hash probes."""
        fam = self._fam4 if version == 4 else self._fam6
        if op.kind is RangeOpKind.NONE:
            # NONE admits announced == declared only: the exact entry.
            p = self._exact_payload(fam, qnet, qlen)
            if p < 0:
                return False
            off = self._span_off
            origins = self._origins
            for j in range(off[p], off[p + 1]):
                if origins[j] == asn:
                    return True
            return False
        limit = self._op_limit(op, qlen)
        if limit < 0:
            return False
        maxlen = fam.maxlen
        lmk = fam.lmk
        m = fam.lenmask[qnet >> (maxlen - lmk)] if lmk else fam.lmall
        m &= (1 << (limit + 1)) - 1
        if not m:
            return False
        hlo, hhi, hpl, hval = fam.hlo, fam.hhi, fam.hpl, fam.hval
        hmask = (1 << fam.hbits) - 1
        hshift = fam.hshift
        off = self._span_off
        origins = self._origins
        while m:
            pl = m.bit_length() - 1
            m ^= 1 << pl
            shift = maxlen - pl
            net = (qnet >> shift) << shift
            if hhi is None:
                x = (net + pl * _HASH_P) & _U64
            else:
                x = ((net ^ (net >> 64)) + pl * _HASH_P) & _U64
            s = ((x * _HASH_C) & _U64) >> hshift
            nlo = net & _U64
            nhi = net >> 64
            while hval[s] != -1:
                if (
                    hpl[s] == pl
                    and hlo[s] == nlo
                    and (hhi is None or hhi[s] == nhi)
                ):
                    a, b = off[hval[s]], off[hval[s] + 1]
                    while a < b:
                        if origins[a] == asn:
                            return True
                        a += 1
                    break
                s = (s + 1) & hmask
        return False

    def match_any(self, version: int, qnet: int, qlen: int, op: RangeOp) -> bool:
        """Whether *any* declared prefix covers the query under ``op``."""
        fam = self._fam4 if version == 4 else self._fam6
        if op.kind is RangeOpKind.NONE:
            return self._exact_payload(fam, qnet, qlen) >= 0
        limit = self._op_limit(op, qlen)
        if limit < 0:
            return False
        maxlen = fam.maxlen
        lmk = fam.lmk
        m = fam.lenmask[qnet >> (maxlen - lmk)] if lmk else fam.lmall
        m &= (1 << (limit + 1)) - 1
        if not m:
            return False
        hlo, hhi, hpl, hval = fam.hlo, fam.hhi, fam.hpl, fam.hval
        hmask = (1 << fam.hbits) - 1
        hshift = fam.hshift
        while m:
            pl = m.bit_length() - 1
            m ^= 1 << pl
            shift = maxlen - pl
            net = (qnet >> shift) << shift
            if hhi is None:
                x = (net + pl * _HASH_P) & _U64
            else:
                x = ((net ^ (net >> 64)) + pl * _HASH_P) & _U64
            s = ((x * _HASH_C) & _U64) >> hshift
            nlo = net & _U64
            nhi = net >> 64
            while hval[s] != -1:
                if (
                    hpl[s] == pl
                    and hlo[s] == nlo
                    and (hhi is None or hhi[s] == nhi)
                ):
                    return True
                s = (s + 1) & hmask
        return False

    def match_members(
        self, members, version: int, qnet: int, qlen: int, op: RangeOp
    ) -> bool:
        """Whether any covering prefix is originated by a member AS."""
        fam = self._fam4 if version == 4 else self._fam6
        if op.kind is RangeOpKind.NONE:
            p = self._exact_payload(fam, qnet, qlen)
            if p < 0:
                return False
            off = self._span_off
            origins = self._origins
            for j in range(off[p], off[p + 1]):
                if origins[j] in members:
                    return True
            return False
        limit = self._op_limit(op, qlen)
        if limit < 0:
            return False
        maxlen = fam.maxlen
        lmk = fam.lmk
        m = fam.lenmask[qnet >> (maxlen - lmk)] if lmk else fam.lmall
        m &= (1 << (limit + 1)) - 1
        if not m:
            return False
        hlo, hhi, hpl, hval = fam.hlo, fam.hhi, fam.hpl, fam.hval
        hmask = (1 << fam.hbits) - 1
        hshift = fam.hshift
        off = self._span_off
        origins = self._origins
        while m:
            pl = m.bit_length() - 1
            m ^= 1 << pl
            shift = maxlen - pl
            net = (qnet >> shift) << shift
            if hhi is None:
                x = (net + pl * _HASH_P) & _U64
            else:
                x = ((net ^ (net >> 64)) + pl * _HASH_P) & _U64
            s = ((x * _HASH_C) & _U64) >> hshift
            nlo = net & _U64
            nhi = net >> 64
            while hval[s] != -1:
                if (
                    hpl[s] == pl
                    and hlo[s] == nlo
                    and (hhi is None or hhi[s] == nhi)
                ):
                    a, b = off[hval[s]], off[hval[s] + 1]
                    while a < b:
                        if origins[a] in members:
                            return True
                        a += 1
                    break
                s = (s + 1) & hmask
        return False

    def covering_origins(self, version: int, qnet: int, qlen: int) -> list:
        """All stored ancestors of the query (exact included): a list of
        ``(declared_length, origins-sequence)`` pairs, shallow first."""
        fam = self._fam4 if version == 4 else self._fam6
        out: list = []
        maxlen = fam.maxlen
        lmk = fam.lmk
        m = fam.lenmask[qnet >> (maxlen - lmk)] if lmk else fam.lmall
        m &= (1 << (qlen + 1)) - 1
        if not m:
            return out
        hlo, hhi, hpl, hval = fam.hlo, fam.hhi, fam.hpl, fam.hval
        hmask = (1 << fam.hbits) - 1
        hshift = fam.hshift
        off = self._span_off
        origins = self._origins
        while m:
            low = m & -m
            pl = low.bit_length() - 1
            m ^= low
            shift = maxlen - pl
            net = (qnet >> shift) << shift
            if hhi is None:
                x = (net + pl * _HASH_P) & _U64
            else:
                x = ((net ^ (net >> 64)) + pl * _HASH_P) & _U64
            s = ((x * _HASH_C) & _U64) >> hshift
            nlo = net & _U64
            nhi = net >> 64
            while hval[s] != -1:
                if (
                    hpl[s] == pl
                    and hlo[s] == nlo
                    and (hhi is None or hhi[s] == nhi)
                ):
                    p = hval[s]
                    out.append((pl, origins[off[p] : off[p + 1]]))
                    break
                s = (s + 1) & hmask
        return out

    # -- cold-path queries ------------------------------------------------

    def covered(self, version: int, qnet: int, qlen: int):
        """Yield ``((version, net, plen), origins-frozenset)`` for every
        stored prefix contained in the query (descendant enumeration)."""
        fam = self._fam4 if version == 4 else self._fam6
        i = fam.root
        if i < 0:
            return
        plen, lo, hi = fam.plen, fam.lo, fam.hi
        left, right, payload = fam.left, fam.right, fam.payload
        maxlen = fam.maxlen
        qtop = qnet >> (maxlen - qlen) if qlen else 0
        # Descend along the query path to the topmost node at or below qlen.
        while i >= 0 and plen[i] < qlen:
            pl = plen[i]
            shift = maxlen - pl
            stored = lo[i] if hi is None else ((hi[i] << 64) | lo[i])
            if (qnet >> shift) != stored:
                return
            i = right[i] if (qnet >> (shift - 1)) & 1 else left[i]
        if i < 0:
            return
        pl = plen[i]
        stored = lo[i] if hi is None else ((hi[i] << 64) | lo[i])
        if (stored >> (pl - qlen)) != qtop:
            return
        off = self._span_off
        origins = self._origins
        stack = [i]
        while stack:
            j = stack.pop()
            p = payload[j]
            if p >= 0:
                jl = plen[j]
                snet = lo[j] if hi is None else ((hi[j] << 64) | lo[j])
                yield (
                    (version, snet << (maxlen - jl), jl),
                    frozenset(origins[off[p] : off[p + 1]]),
                )
            if right[j] >= 0:
                stack.append(right[j])
            if left[j] >= 0:
                stack.append(left[j])

    def iter_exact(self):
        """Yield every ``((version, net, plen), origins-frozenset)``."""
        for version in (4, 6):
            maxlen = _MAX_LEN[version]
            yield from self.covered(version, 0, 0) if maxlen else ()

    def origins(self):
        """Every origin AS with at least one declared route, sorted."""
        if not self._okey_extra and not self._okey_dead:
            return iter(self._origin_ids)
        ids = self._origin_ids
        off = self._okey_off
        alive = set(ids)
        for origin, gone in self._okey_dead.items():
            j = bisect_left(ids, origin)
            if len(gone) >= off[j + 1] - off[j] and origin not in self._okey_extra:
                alive.discard(origin)
        alive.update(self._okey_extra)
        return iter(sorted(alive))

    def origin_keys(self, asn: int) -> tuple:
        """Every ``(version, network, length)`` the AS declared."""
        ids = self._origin_ids
        j = bisect_left(ids, asn)
        in_base = j < len(ids) and ids[j] == asn
        if not self._okey_extra and not self._okey_dead:
            return tuple(self._base_okey_span(j)) if in_base else ()
        gone = self._okey_dead.get(asn)
        keys = [
            key
            for key in (self._base_okey_span(j) if in_base else ())
            if gone is None or key not in gone
        ]
        keys.extend(self._okey_extra.get(asn, ()))
        keys.sort()
        return tuple(keys)

    # -- point mutation (incremental delta ingestion) ---------------------

    def thaw(self) -> "RouteTrie":
        """A fully mutable deep copy: every plane becomes a fresh ``array``.

        Point mutation must never touch the planes a live reader (or the
        read-only mmap behind a cached envelope) is walking, so the delta
        path thaws first, patches the copy, and hot-swaps it in.  The
        per-family live/tombstone counters that drive the rebuild policy
        are recovered by one scan of each hash plane.
        """
        planes = {}
        for name, code, plane in self._raw_planes():
            fresh = array(code)
            fresh.frombytes(plane.tobytes() if isinstance(plane, array) else bytes(plane))
            planes[name] = fresh
        clone = RouteTrie.from_planes(self.meta(), planes)
        # Overlays ride along instead of being folded in: materializing
        # okey arrays is O(table), which would put the cost this layer
        # exists to avoid right back on the re-thaw path.
        clone._okey_extra = {o: set(keys) for o, keys in self._okey_extra.items()}
        clone._okey_dead = {o: set(keys) for o, keys in self._okey_dead.items()}
        for fam in (clone._fam4, clone._fam6):
            live = tomb = 0
            if fam.hval is not None:
                # Slots hold -1 (empty), _TOMB, or a payload id >= 0, so
                # two C-speed count() calls replace a per-slot scan.
                hval = fam.hval
                tomb = hval.count(_TOMB)
                live = len(hval) - hval.count(-1) - tomb
            fam.live = live
            fam.tomb = tomb
        return clone

    def _require_thawed(self, fam: _Family) -> None:
        if fam.plen is not None and not isinstance(fam.plen, array):
            raise TypeError(
                "point mutation requires a thawed RouteTrie (call thaw() first)"
            )

    def _append_span(self, origin_list) -> int:
        """Append one sorted origin span to the arena; return its payload id.

        Spans are immutable once referenced (readers slice them without
        locks), so origin-set changes append a fresh span and repoint the
        node/hash payload ids; superseded spans become garbage that the
        next full rebuild reclaims.
        """
        for asn in origin_list:
            self._origins.append(asn)
        self._span_off.append(len(self._origins))
        return len(self._span_off) - 2

    def _okey_insert(self, version: int, net: int, plen: int, origin: int) -> None:
        # Callers (insert_route) guarantee the pair is new; undo a
        # pending removal if one exists, otherwise record an addition.
        key = (version, net, plen)
        dead = self._okey_dead.get(origin)
        if dead is not None and key in dead:
            dead.discard(key)
            if not dead:
                del self._okey_dead[origin]
            return
        self._okey_extra.setdefault(origin, set()).add(key)

    def _okey_remove(self, version: int, net: int, plen: int, origin: int) -> None:
        # Callers (remove_route) guarantee the pair was declared; undo a
        # pending addition if one exists, otherwise mark the base entry.
        key = (version, net, plen)
        extra = self._okey_extra.get(origin)
        if extra is not None and key in extra:
            extra.discard(key)
            if not extra:
                del self._okey_extra[origin]
            return
        self._okey_dead.setdefault(origin, set()).add(key)

    def _base_okey_span(self, j: int):
        """The frozen-array keys of the origin at position ``j``."""
        ver, pl = self._okey_ver, self._okey_plen
        hi, lo = self._okey_hi, self._okey_lo
        for t in range(self._okey_off[j], self._okey_off[j + 1]):
            yield (ver[t], (hi[t] << 64) | lo[t], pl[t])

    def _materialized_okey(self) -> tuple:
        """Fold the overlays back into flat arrays (export/pickle path)."""
        extra, dead = self._okey_extra, self._okey_dead
        ids = self._origin_ids
        new_ids = array(self._ARENA_PLANES["origin_ids"])
        new_off = array(self._ARENA_PLANES["okey_off"], [0])
        new_ver = array(self._ARENA_PLANES["okey_ver"])
        new_pl = array(self._ARENA_PLANES["okey_plen"])
        new_hi = array(self._ARENA_PLANES["okey_hi"])
        new_lo = array(self._ARENA_PLANES["okey_lo"])
        base_pos = {origin: j for j, origin in enumerate(ids)}
        for origin in sorted(set(ids) | set(extra)):
            keys = []
            j = base_pos.get(origin)
            if j is not None:
                gone = dead.get(origin)
                keys.extend(
                    key for key in self._base_okey_span(j)
                    if gone is None or key not in gone
                )
            keys.extend(extra.get(origin, ()))
            if not keys:
                continue
            keys.sort()
            new_ids.append(origin)
            for version, net, plen in keys:
                new_ver.append(version)
                new_pl.append(plen)
                new_hi.append(net >> 64)
                new_lo.append(net & _U64)
            new_off.append(len(new_ver))
        return new_ids, new_off, new_ver, new_pl, new_hi, new_lo

    def insert_route(self, prefix: Prefix, origin: int) -> bool:
        """Point-insert one declared ⟨prefix, origin⟩ pair (thawed only).

        Returns False when the pair was already declared.  New prefixes
        append a node row, claim a hash slot (reusing tombstones), and OR
        their length bit into the pruning masks; an origin added to an
        existing prefix appends a fresh span and repoints the payload id.
        The hash plane is rebuilt first when the insert would push load
        factor (live + tombstones) past 0.5.
        """
        version = prefix.version
        fam = self._fam4 if version == 4 else self._fam6
        self._require_thawed(fam)
        qlen = prefix.length
        shift = fam.maxlen - qlen
        net = (prefix.network >> shift) << shift if qlen else 0
        node = _node_point_insert(fam, net, qlen)
        p = fam.payload[node]
        off = self._span_off
        if p >= 0:
            span = list(self._origins[off[p] : off[p + 1]])
            if origin in span:
                return False
            span.append(origin)
            span.sort()
            new_p = self._append_span(span)
            fam.payload[node] = new_p
            _hash_point_set(fam, net, qlen, new_p)
        else:
            new_p = self._append_span([origin])
            fam.payload[node] = new_p
            self._prefix_count += 1
            if fam.hval is None or 2 * (fam.live + fam.tomb + 1) > (1 << fam.hbits):
                _rebuild_fast(fam, lmfactor=256)
            else:
                _hash_point_set(fam, net, qlen, new_p)
                _mask_point_insert(fam, net, qlen)
        self._okey_insert(version, net, qlen, origin)
        self._origin_set = None
        return True

    def remove_route(self, prefix: Prefix, origin: int) -> bool:
        """Point-delete one declared ⟨prefix, origin⟩ pair (thawed only).

        Returns False when the pair was not declared.  The last origin of
        a prefix clears the node payload and tombstones the hash slot —
        the structural node row stays (``covered`` skips payload < 0) and
        mask bits stay stale, both safe because the hash is the ground
        truth.  The plane is rebuilt when tombstones reach a quarter of
        the table or outnumber live entries.
        """
        version = prefix.version
        fam = self._fam4 if version == 4 else self._fam6
        self._require_thawed(fam)
        qlen = prefix.length
        shift = fam.maxlen - qlen
        net = (prefix.network >> shift) << shift if qlen else 0
        node = _node_find(fam, net, qlen)
        if node < 0:
            return False
        p = fam.payload[node]
        if p < 0:
            return False
        off = self._span_off
        span = list(self._origins[off[p] : off[p + 1]])
        if origin not in span:
            return False
        if len(span) > 1:
            span.remove(origin)
            new_p = self._append_span(span)
            fam.payload[node] = new_p
            _hash_point_set(fam, net, qlen, new_p)
        else:
            fam.payload[node] = -1
            _hash_point_delete(fam, net, qlen)
            self._prefix_count -= 1
            if fam.tomb > fam.live or 4 * fam.tomb > (1 << fam.hbits):
                _rebuild_fast(fam, lmfactor=256)
        self._okey_remove(version, net, qlen, origin)
        self._origin_set = None
        return True

    # -- introspection and (de)materialization ----------------------------

    def stats(self) -> dict:
        """Size figures: prefixes, origins, nodes, and total plane bytes."""
        total = sum(_plane_bytes(plane) for _, _, plane in self.export_planes())
        return {
            "prefixes": self._prefix_count,
            "origins": sum(1 for _ in self.origins()),
            "nodes": len(self._fam4) + len(self._fam6),
            "plane_bytes": total,
        }

    def meta(self) -> dict:
        """JSON-able reconstruction scalars for the flat cache envelope."""
        return {
            "root4": self._fam4.root,
            "root6": self._fam6.root,
            "lmk4": self._fam4.lmk,
            "lm4": self._fam4.lmall,
            "h4": self._fam4.hbits,
            "lmk6": self._fam6.lmk,
            "lm6": self._fam6.lmall,
            "h6": self._fam6.hbits,
            "prefix_count": self._prefix_count,
        }

    _OKEY_PLANES = ("origin_ids", "okey_off", "okey_ver", "okey_plen", "okey_hi", "okey_lo")

    def _raw_planes(self) -> list:
        """Every plane as stored, overlays NOT folded in (thaw's view)."""
        out = []
        for tag, fam in (("f4", self._fam4), ("f6", self._fam6)):
            for name, code in self._FAMILY_PLANES.items():
                plane = getattr(fam, name)
                if plane is None:  # IPv4 has no hi plane; IPv6 no lenmask
                    continue
                out.append((f"{tag}.{name}", code, plane))
        for name, code in self._ARENA_PLANES.items():
            out.append((name, code, getattr(self, f"_{name}")))
        return out

    def export_planes(self) -> list:
        """Every plane as ``(name, typecode, buffer)`` in canonical order.

        Point-mutation overlays (if any) are folded back into flat okey
        arrays here, so exported planes are always self-contained.
        """
        planes = self._raw_planes()
        if self._okey_extra or self._okey_dead:
            merged = dict(zip(self._OKEY_PLANES, self._materialized_okey()))
            planes = [
                (name, code, merged.get(name, plane))
                for name, code, plane in planes
            ]
        return planes

    @classmethod
    def from_planes(cls, meta: dict, planes: dict) -> "RouteTrie":
        """Rebuild from ``meta`` plus a name→buffer mapping (mmap views
        or arrays); the inverse of :meth:`export_planes`/:meth:`meta`."""
        fams = {}
        for tag, maxlen, suffix in (("f4", 32, "4"), ("f6", 128, "6")):
            fam = _Family(
                maxlen,
                meta[f"root{suffix}"],
                planes[f"{tag}.plen"],
                planes[f"{tag}.lo"],
                planes.get(f"{tag}.hi") if maxlen > 64 else None,
                planes[f"{tag}.left"],
                planes[f"{tag}.right"],
                planes[f"{tag}.payload"],
            )
            _attach_fast(
                fam,
                meta.get(f"lmk{suffix}", 0),
                meta.get(f"lm{suffix}", 0),
                meta.get(f"h{suffix}", 0),
                planes,
                tag,
            )
            fams[tag] = fam
        return cls(
            fams["f4"],
            fams["f6"],
            planes["span_off"],
            planes["origins"],
            planes["origin_ids"],
            planes["okey_off"],
            planes["okey_ver"],
            planes["okey_plen"],
            planes["okey_hi"],
            planes["okey_lo"],
            meta["prefix_count"],
        )

    def detach(self) -> None:
        """Release every plane (mmap teardown); the trie is unusable after.

        Called by :meth:`CompiledIndex.close
        <repro.core.compiled.CompiledIndex.close>` before the backing
        ``mmap`` closes — an exported memoryview would otherwise keep the
        mapping (and its file descriptor) alive.
        """
        for fam in (self._fam4, self._fam6):
            for name in self._FAMILY_PLANES:
                plane = getattr(fam, name)
                if isinstance(plane, memoryview):
                    plane.release()
                setattr(fam, name, None)
            fam.root = -1
            fam.lmk = 0
            fam.lmall = 0
            fam.hbits = 0
        for name in self._ARENA_PLANES:
            plane = getattr(self, f"_{name}")
            if isinstance(plane, memoryview):
                plane.release()
            setattr(self, f"_{name}", None)
        self._okey_extra = {}
        self._okey_dead = {}
        self._origin_set = None

    def __getstate__(self):
        planes = {
            name: _materialize(code, plane)
            for name, code, plane in self.export_planes()
        }
        return {"meta": self.meta(), "planes": planes}

    def __setstate__(self, state):
        clone = RouteTrie.from_planes(state["meta"], state["planes"])
        for slot in self.__slots__:
            setattr(self, slot, getattr(clone, slot))


class RouteTrieBuilder:
    """Accumulates ⟨prefix, origin⟩ pairs, then freezes a :class:`RouteTrie`."""

    def __init__(self):
        self._roots = {4: None, 6: None}
        self._by_origin: dict[int, set] = {}

    def add(self, prefix: Prefix, origin: int) -> None:
        """Register one declared ⟨prefix, origin⟩ pair."""
        version = prefix.version
        maxlen = _MAX_LEN[version]

        def update(payload):
            if payload is None:
                return {origin}
            payload.add(origin)
            return payload

        self._roots[version] = _insert(
            self._roots[version], prefix.network, prefix.length, maxlen, update
        )
        self._by_origin.setdefault(origin, set()).add(
            (version, prefix.network, prefix.length)
        )

    def build(self) -> RouteTrie:
        """Linearize the accumulated pairs into a frozen :class:`RouteTrie`."""
        span_off = array("i", [0])
        origins = array("Q")

        def payload_out(origin_set) -> int:
            for asn in sorted(origin_set):
                origins.append(asn)
            span_off.append(len(origins))
            return len(span_off) - 2

        fam4 = _linearize(self._roots[4], 32, payload_out)
        fam6 = _linearize(self._roots[6], 128, payload_out)
        _build_fast(fam4, lmfactor=256)
        _build_fast(fam6, lmfactor=256)
        origin_ids = array("Q")
        okey_off = array("i", [0])
        okey_ver = array("B")
        okey_plen = array("B")
        okey_hi = array("Q")
        okey_lo = array("Q")
        for asn in sorted(self._by_origin):
            origin_ids.append(asn)
            for version, net, plen in sorted(self._by_origin[asn]):
                okey_ver.append(version)
                okey_plen.append(plen)
                okey_hi.append(net >> 64)
                okey_lo.append(net & _U64)
            okey_off.append(len(okey_ver))
        return RouteTrie(
            fam4,
            fam6,
            span_off,
            origins,
            origin_ids,
            okey_off,
            okey_ver,
            okey_plen,
            okey_hi,
            okey_lo,
            prefix_count=len(span_off) - 1,
        )


# -- the range-operator trie (route-set members) ----------------------------


class OpTrie:
    """Declared ``prefix^op`` members of one route-set, trie-frozen.

    The payload arena holds ``(kind, low, high)`` triples; ``matches``
    inlines :meth:`RangeOp.allows` over the codes so the walk never
    reconstructs operator objects.
    """

    __slots__ = ("_fam4", "_fam6", "_off", "_kind", "_low", "_high")

    def __init__(self, fam4, fam6, off, kind, low, high):
        self._fam4 = fam4
        self._fam6 = fam6
        self._off = off
        self._kind = kind
        self._low = low
        self._high = high

    @classmethod
    def from_entries(cls, entries: dict) -> "OpTrie":
        """Freeze a ``{(version, net, plen): [RangeOp, ...]}`` mapping."""
        roots = {4: None, 6: None}
        for (version, net, plen), ops in entries.items():
            triples = [
                (
                    _KIND_TO_CODE[op.kind],
                    min(op.low, _OP_BOUND_CAP),
                    min(op.high, _OP_BOUND_CAP),
                )
                for op in ops
            ]

            def update(payload, triples=triples):
                if payload is None:
                    return list(triples)
                payload.extend(triples)
                return payload

            roots[version] = _insert(
                roots[version], net, plen, _MAX_LEN[version], update
            )
        off = array("i", [0])
        kind = array("B")
        low = array("H")
        high = array("H")

        def payload_out(triples) -> int:
            for k, lo_bound, hi_bound in triples:
                kind.append(k)
                low.append(lo_bound)
                high.append(hi_bound)
            off.append(len(kind))
            return len(off) - 2

        fam4 = _linearize(roots[4], 32, payload_out)
        fam6 = _linearize(roots[6], 128, payload_out)
        _build_fast(fam4)
        _build_fast(fam6)
        return cls(fam4, fam6, off, kind, low, high)

    @property
    def op_count(self) -> int:
        return len(self._kind)

    def matches(self, version: int, qnet: int, qlen: int, override: RangeOp | None) -> bool:
        """Ancestor probes over the member prefixes, mask-pruned.

        With ``override`` (an outer ``^op`` on the whole set) any stored
        entry at a covering prefix counts if the override admits the
        announced length — the length mask is truncated to the override's
        admissible declared lengths, so every hit is a match.  Without an
        override each stored operator is tested at its entry.
        """
        fam = self._fam4 if version == 4 else self._fam6
        maxlen = fam.maxlen
        lmk = fam.lmk
        m = fam.lenmask[qnet >> (maxlen - lmk)] if lmk else fam.lmall
        if override is None:
            m &= (1 << (qlen + 1)) - 1
        elif override.kind is RangeOpKind.NONE:
            # NONE admits announced == declared only: the exact entry.
            m &= 1 << qlen
        else:
            limit = RouteTrie._op_limit(override, qlen)
            if limit < 0:
                return False
            m &= (1 << (limit + 1)) - 1
        if not m:
            return False
        hlo, hhi, hpl, hval = fam.hlo, fam.hhi, fam.hpl, fam.hval
        hmask = (1 << fam.hbits) - 1
        hshift = fam.hshift
        off, kind, low, high = self._off, self._kind, self._low, self._high
        checked = override is None
        while m:
            pl = m.bit_length() - 1
            m ^= 1 << pl
            shift = maxlen - pl
            net = (qnet >> shift) << shift
            if hhi is None:
                x = (net + pl * _HASH_P) & _U64
            else:
                x = ((net ^ (net >> 64)) + pl * _HASH_P) & _U64
            s = ((x * _HASH_C) & _U64) >> hshift
            nlo = net & _U64
            nhi = net >> 64
            while hval[s] != -1:
                if (
                    hpl[s] == pl
                    and hlo[s] == nlo
                    and (hhi is None or hhi[s] == nhi)
                ):
                    if not checked:
                        return True
                    a, b = off[hval[s]], off[hval[s] + 1]
                    while a < b:
                        code = kind[a]
                        if code == _OP_NONE:
                            ok = qlen == pl
                        elif code == _OP_MINUS:
                            ok = qlen > pl
                        elif code == _OP_PLUS:
                            ok = qlen >= pl
                        else:
                            ok = low[a] <= qlen <= high[a]
                        if ok:
                            return True
                        a += 1
                    break
                s = (s + 1) & hmask
        return False

    def iter_entries(self):
        """Yield every stored ``((version, net, plen), RangeOp)`` pair.

        Operators with bounds beyond 255 come back clamped (see
        ``_OP_BOUND_CAP``) — exact for matching, approximate for display.
        """
        off = self._off
        for version, fam in ((4, self._fam4), (6, self._fam6)):
            if fam.root < 0:
                continue
            plen, lo, hi = fam.plen, fam.lo, fam.hi
            left, right, payload = fam.left, fam.right, fam.payload
            maxlen = fam.maxlen
            stack = [fam.root]
            while stack:
                j = stack.pop()
                p = payload[j]
                if p >= 0:
                    pl = plen[j]
                    snet = lo[j] if hi is None else ((hi[j] << 64) | lo[j])
                    key = (version, snet << (maxlen - pl), pl)
                    for t in range(off[p], off[p + 1]):
                        code = self._kind[t]
                        if code in (_OP_EXACT, _OP_RANGE):
                            op = RangeOp(
                                _CODE_TO_KIND[code], self._low[t], self._high[t]
                            )
                        else:
                            op = RangeOp(_CODE_TO_KIND[code])
                        yield key, op
                if right[j] >= 0:
                    stack.append(right[j])
                if left[j] >= 0:
                    stack.append(left[j])

    def __getstate__(self):
        state = {"off": self._off, "kind": self._kind, "low": self._low, "high": self._high}
        for tag, fam in (("f4", self._fam4), ("f6", self._fam6)):
            state[tag] = {
                "root": fam.root,
                "lmk": fam.lmk,
                "lmall": fam.lmall,
                "hbits": fam.hbits,
                "planes": {
                    name: _materialize(code, getattr(fam, name))
                    for name, code in RouteTrie._FAMILY_PLANES.items()
                    if getattr(fam, name) is not None
                },
            }
        return state

    def __setstate__(self, state):
        for tag, maxlen, slot in (("f4", 32, "_fam4"), ("f6", 128, "_fam6")):
            planes = state[tag]["planes"]
            fam = _Family(
                maxlen,
                state[tag]["root"],
                planes["plen"],
                planes["lo"],
                planes.get("hi"),
                planes["left"],
                planes["right"],
                planes["payload"],
            )
            _attach_fast(
                fam,
                state[tag].get("lmk", 0),
                state[tag].get("lmall", 0),
                state[tag].get("hbits", 0),
                {f"{tag}.{name}": plane for name, plane in planes.items()},
                tag,
            )
            setattr(self, slot, fam)
        self._off = state["off"]
        self._kind = state["kind"]
        self._low = state["low"]
        self._high = state["high"]


# -- the legacy oracle ------------------------------------------------------


class NaiveRouteIndex:
    """The pre-trie dict engine, preserved verbatim as the reference.

    Kept for three reasons: the hypothesis property suite and the
    trie-vs-legacy differential tests compare against it, the
    ``BENCH_prefix_engine`` microbenchmark measures the trie's speedup
    over it, and ``RPSLYZER_PREFIX_ENGINE=naive`` can force it globally
    to bisect a suspected trie bug in production data.
    """

    __slots__ = ("route_index", "origin_prefixes")

    def __init__(self):
        self.route_index: dict[tuple, set] = {}
        self.origin_prefixes: dict[int, set] = {}

    def add(self, prefix: Prefix, origin: int) -> None:
        """Register one declared ⟨prefix, origin⟩ pair."""
        key = (prefix.version, prefix.network, prefix.length)
        self.route_index.setdefault(key, set()).add(origin)
        self.origin_prefixes.setdefault(origin, set()).add(key)

    def has_origin(self, asn: int) -> bool:
        """Whether the AS originates at least one declared route."""
        return asn in self.origin_prefixes

    def has_exact(self, version: int, qnet: int, qlen: int) -> bool:
        """Whether some route object declares exactly this prefix."""
        return bool(self.route_index.get((version, qnet, qlen)))

    def exact_origins(self, version: int, qnet: int, qlen: int) -> frozenset:
        """Origin ASes of route objects exactly matching the prefix."""
        return frozenset(self.route_index.get((version, qnet, qlen), ()))

    def match_origin(self, asn: int, version: int, qnet: int, qlen: int, op: RangeOp) -> bool:
        """Ancestor enumeration over the per-origin declared-prefix set."""
        declared = self.origin_prefixes.get(asn)
        if not declared:
            return False
        maxlen = _MAX_LEN[version]
        for length in range(qlen, -1, -1):
            shift = maxlen - length
            key = (version, (qnet >> shift) << shift, length)
            if key in declared and op.allows(length, qlen):
                return True
        return False

    def match_any(self, version: int, qnet: int, qlen: int, op: RangeOp) -> bool:
        """Whether *any* declared prefix covers the query under ``op``."""
        maxlen = _MAX_LEN[version]
        route_index = self.route_index
        for length in range(qlen, -1, -1):
            shift = maxlen - length
            key = (version, (qnet >> shift) << shift, length)
            if key in route_index and op.allows(length, qlen):
                return True
        return False

    def match_members(
        self, members, version: int, qnet: int, qlen: int, op: RangeOp
    ) -> bool:
        """Whether any covering prefix is originated by a member AS."""
        maxlen = _MAX_LEN[version]
        route_index = self.route_index
        for length in range(qlen, -1, -1):
            shift = maxlen - length
            origins = route_index.get((version, (qnet >> shift) << shift, length))
            if origins and not members.isdisjoint(origins) and op.allows(length, qlen):
                return True
        return False

    def covering_origins(self, version: int, qnet: int, qlen: int) -> list:
        """All stored ancestors of the query as ``(length, origins)``."""
        maxlen = _MAX_LEN[version]
        out = []
        for length in range(qlen, -1, -1):
            shift = maxlen - length
            origins = self.route_index.get((version, (qnet >> shift) << shift, length))
            if origins:
                out.append((length, origins))
        return out

    def covered(self, version: int, qnet: int, qlen: int):
        """Yield every stored ``(key, origins)`` contained in the query."""
        probe = Prefix(version, qnet, qlen)
        for key, origins in self.route_index.items():
            if key[0] == version and probe.contains(Prefix(*key)):
                yield key, frozenset(origins)

    def iter_exact(self):
        """Yield every ``((version, net, plen), origins-frozenset)``."""
        for key, origins in self.route_index.items():
            yield key, frozenset(origins)

    def origins(self):
        """Every origin AS with at least one declared route, sorted."""
        return iter(sorted(self.origin_prefixes))

    def origin_keys(self, asn: int) -> tuple:
        """Every ``(version, network, length)`` the AS declared."""
        return tuple(sorted(self.origin_prefixes.get(asn, ())))

    def stats(self) -> dict:
        """Size figures mirroring :meth:`RouteTrie.stats` (no planes)."""
        return {
            "prefixes": len(self.route_index),
            "origins": len(self.origin_prefixes),
            "nodes": 0,
            "plane_bytes": 0,
        }
