"""The six special cases of Section 5.1: relaxed filters and safelists.

Relaxed filters (checked when a rule's *peering* matched but its *filter*
did not):

* **Export Self** — a transit AS exports ``announce AS<self>``, meaning
  "my routes and my customers' routes"; relaxed when the AS received the
  route from a customer.
* **Import Customer** — ``from AS<C> accept AS<C>`` on a customer C is
  meant as ``accept ANY``.
* **Missing Routes** — the filter names the route's origin (directly or
  via an as-set) but the corresponding *route* object was never created.

Safelisted relationships (checked when nothing else matched):

* **Only Provider Policies** — the AS only documents its providers
  (usually because a provider mandated it); imports from customers and
  peers are safelisted.
* **Tier-1 Peering** — Tier-1s exchange routes by definition.
* **Uphill** — customers export to, and providers import from, their
  customers; uphill propagation is safelisted in both directions.
"""

from __future__ import annotations

from repro.bgp.topology import AsRelationships, Rel
from repro.core.filter_match import MatchContext
from repro.core.query import QueryEngine
from repro.core.report import ItemKind, ReportItem
from repro.ir.model import AutNum
from repro.rpsl.filter import Filter, FilterAsn, FilterAsSet, FilterPeerAs
from repro.rpsl.walk import iter_peerings, or_atoms, positive_peer_asns

__all__ = ["SpecialCaseChecker"]


class SpecialCaseChecker:
    """Stateful checker for the Section 5.1 relaxations and safelists."""

    def __init__(self, query: QueryEngine, relationships: AsRelationships):
        self.query = query
        self.relationships = relationships
        self._only_provider_cache: dict[int, bool] = {}

    # -- relaxed filters (5.1.1) -----------------------------------------

    def relaxed_item(
        self,
        direction: str,
        subject_asn: int,
        remote_asn: int,
        ctx: MatchContext,
        peer_matched_filters: tuple[Filter, ...],
    ) -> ReportItem | None:
        """The relaxation that applies, or None.

        ``peer_matched_filters`` are the filters of factors whose peering
        matched the remote AS but whose filter check failed — the exact
        precondition of Section 5.1.1.
        """
        for candidate in peer_matched_filters:
            for atom in or_atoms(candidate):
                item = self._relax_atom(direction, subject_asn, remote_asn, ctx, atom)
                if item is not None:
                    return item
        return None

    def _relax_atom(
        self,
        direction: str,
        subject_asn: int,
        remote_asn: int,
        ctx: MatchContext,
        atom: Filter,
    ) -> ReportItem | None:
        # Export Self: export filter names the exporting AS itself, and the
        # route was received from one of its customers.  Per the worked
        # example in the paper's Appendix C, the relaxation still requires
        # the prefix to be registered by someone in the exporter's customer
        # cone — "announce AS<self>" is widened to "self plus customers",
        # not to ANY.
        if direction == "export" and isinstance(atom, FilterAsn) and atom.asn == subject_asn:
            previous = ctx.as_path[1] if len(ctx.as_path) > 1 else None
            if previous is not None and (
                self.relationships.rel(subject_asn, previous) is Rel.CUSTOMER
            ):
                cone = self.relationships.customer_cone(subject_asn)
                registered = self.query.origins_of(ctx.prefix)
                if registered & cone:
                    return ReportItem.of(ItemKind.SPEC_EXPORT_SELF)
        # Import Customer: import filter names the (customer) peer itself.
        if direction == "import":
            names_peer = (
                isinstance(atom, FilterAsn) and atom.asn == remote_asn
            ) or isinstance(atom, FilterPeerAs)
            if names_peer and self.relationships.rel(subject_asn, remote_asn) is Rel.CUSTOMER:
                return ReportItem.of(ItemKind.SPEC_IMPORT_CUSTOMER)
        # Missing Routes: the filter names the route's origin, so the intent
        # covers this route; only the route object is missing.
        origin = ctx.origin
        if isinstance(atom, FilterAsn) and atom.asn == origin:
            return ReportItem.of(ItemKind.SPEC_MISSING_ROUTES, asn=origin)
        if isinstance(atom, FilterPeerAs) and ctx.peer_asn == origin:
            return ReportItem.of(ItemKind.SPEC_MISSING_ROUTES, asn=origin)
        if isinstance(atom, FilterAsSet) and not atom.any_member:
            resolution = self.query.flatten_as_set(atom.name)
            if origin in resolution.members:
                return ReportItem.of(ItemKind.SPEC_MISSING_ROUTES, asn=origin)
        return None

    # -- safelisted relationships (5.1.2) ---------------------------------

    def safelist_item(
        self,
        direction: str,
        from_asn: int,
        to_asn: int,
        subject: AutNum | None,
        ctx: MatchContext | None = None,
    ) -> ReportItem | None:
        """The safelist that applies to this hop direction, or None."""
        subject_asn = to_asn if direction == "import" else from_asn
        remote_asn = from_asn if direction == "import" else to_asn

        # (1) Only Provider Policies — imports from customers/peers of ASes
        # that only document their providers.
        if direction == "import" and subject is not None and self._only_provider_policies(subject):
            remote_rel = self.relationships.rel(subject_asn, remote_asn)
            if remote_rel is Rel.CUSTOMER:
                return ReportItem.of(ItemKind.SPEC_CUSTOMER_ONLY_PROVIDER_POLICIES)
            if remote_rel is Rel.PEER:
                return ReportItem.of(ItemKind.SPEC_OTHER_ONLY_PROVIDER_POLICIES)

        # (2) Tier-1 peering.
        tier1 = self.relationships.tier1
        if from_asn in tier1 and to_asn in tier1:
            return ReportItem.of(ItemKind.SPEC_TIER1_PAIR)

        # (3) Uphill customer→provider propagation (both directions of the
        # hop: the customer's export and the provider's import).  One
        # carve-out, visible in the paper's Appendix C example: the origin
        # AS's *own* export is never uphill-safelisted (BadExport for
        # AS141893→AS56239) — first-hop filters are exactly where the RPSL
        # can prevent hijacks, so an origin failing to cover its own
        # announcement stays unverified.
        if self.relationships.rel(from_asn, to_asn) is Rel.PROVIDER:
            origin_own_export = (
                direction == "export"
                and ctx is not None
                and ctx.origin == from_asn
            )
            if not origin_own_export:
                return ReportItem.of(ItemKind.SPEC_UPHILL)
        return None

    def _only_provider_policies(self, aut_num: AutNum) -> bool:
        """Whether the AS's rules reference only its providers."""
        cached = self._only_provider_cache.get(aut_num.asn)
        if cached is not None:
            return cached
        providers = self.relationships.providers.get(aut_num.asn, set())
        referenced: set[int] = set()
        simple = True
        for rule in (*aut_num.imports, *aut_num.exports):
            for peering in iter_peerings(rule.expr):
                asns, is_simple = positive_peer_asns(peering.as_expr)
                referenced.update(asns)
                simple = simple and is_simple
        result = bool(referenced) and simple and referenced <= providers
        self._only_provider_cache[aut_num.asn] = result
        return result
