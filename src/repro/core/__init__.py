"""The verification engine: RPSLyzer's primary contribution.

Pipeline: a :class:`~repro.core.query.QueryEngine` indexes the IR; the
peering/filter/AS-path matchers evaluate rule components against observed
routes; the :class:`~repro.core.verify.Verifier` walks each BGP route hop
by hop, classifying every import and export into the status lattice
Verified → Skip → Unrecorded → Relaxed → Safelisted → Unverified.
"""

from repro.core.compiled import (
    CompiledIndex,
    IndexCacheError,
    compile_index,
    get_or_compile,
    ir_digest,
    load_index,
    save_index,
)
from repro.core.query import QueryEngine
from repro.core.report import HopReport, ReportItem, RouteReport
from repro.core.status import SpecialCase, VerifyStatus
from repro.core.verify import Verifier, VerifyOptions

__all__ = [
    "CompiledIndex",
    "HopReport",
    "IndexCacheError",
    "QueryEngine",
    "ReportItem",
    "RouteReport",
    "SpecialCase",
    "Verifier",
    "VerifyOptions",
    "VerifyStatus",
    "compile_index",
    "get_or_compile",
    "ir_digest",
    "load_index",
    "save_index",
]
