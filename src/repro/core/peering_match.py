"""Peering evaluation: does a rule's peering cover the remote AS?

The verifier matches at the AS level (router expressions are ignored, as
in the paper), so a peering evaluates against a single remote ASN.  The
result reuses the four-valued :class:`~repro.core.filter_match.Eval` —
peering-set or as-set references can be unrecorded.
"""

from __future__ import annotations

from repro.core.filter_match import Eval, Val
from repro.core.query import QueryEngine
from repro.core.report import ItemKind, ReportItem
from repro.rpsl.peering import (
    AsExpr,
    PeerAnd,
    PeerAny,
    PeerAsn,
    PeerAsSet,
    PeerExcept,
    PeerOr,
    Peering,
    PeeringSetRef,
)

__all__ = ["PeeringEvaluator"]


class PeeringEvaluator:
    """Evaluates peering ASTs against a remote ASN."""

    def __init__(self, query: QueryEngine, max_peering_set_depth: int = 8):
        self.query = query
        self.max_peering_set_depth = max_peering_set_depth

    def evaluate(self, peering: Peering, remote_asn: int) -> Eval:
        """Whether the peering covers sessions with ``remote_asn``."""
        return self._eval_expr(peering.as_expr, remote_asn, 0)

    def _eval_expr(self, expr: AsExpr, remote_asn: int, depth: int) -> Eval:
        if isinstance(expr, PeerAny):
            return Eval(Val.TRUE)
        if isinstance(expr, PeerAsn):
            if expr.asn == remote_asn:
                return Eval(Val.TRUE)
            return Eval(
                Val.FALSE,
                (ReportItem.of(ItemKind.MATCH_REMOTE_AS_NUM, asn=expr.asn),),
            )
        if isinstance(expr, PeerAsSet):
            resolution = self.query.flatten_as_set(expr.name)
            if resolution.contains_any or remote_asn in resolution.members:
                return Eval(Val.TRUE)
            if not resolution.recorded:
                return Eval(
                    Val.UNREC,
                    (ReportItem.of(ItemKind.UNRECORDED_AS_SET, name=expr.name),),
                )
            if resolution.unrecorded:
                items = tuple(
                    ReportItem.of(ItemKind.UNRECORDED_AS_SET, name=missing)
                    for missing in resolution.unrecorded[:4]
                )
                return Eval(Val.UNREC, items)
            return Eval(
                Val.FALSE,
                (ReportItem.of(ItemKind.MATCH_REMOTE_AS_SET, name=expr.name),),
            )
        if isinstance(expr, PeeringSetRef):
            if depth >= self.max_peering_set_depth:
                return Eval(
                    Val.UNREC,
                    (ReportItem.of(ItemKind.UNRECORDED_PEERING_SET, name=expr.name),),
                )
            peerings = self.query.resolve_peering_set(expr.name)
            if peerings is None:
                return Eval(
                    Val.UNREC,
                    (ReportItem.of(ItemKind.UNRECORDED_PEERING_SET, name=expr.name),),
                )
            result = Eval(Val.FALSE)
            for peering in peerings:
                result = result.or_(self._eval_expr(peering.as_expr, remote_asn, depth + 1))
                if result.value is Val.TRUE:
                    return result
            return result
        if isinstance(expr, PeerAnd):
            return self._eval_expr(expr.left, remote_asn, depth).and_(
                self._eval_expr(expr.right, remote_asn, depth)
            )
        if isinstance(expr, PeerOr):
            return self._eval_expr(expr.left, remote_asn, depth).or_(
                self._eval_expr(expr.right, remote_asn, depth)
            )
        if isinstance(expr, PeerExcept):
            return self._eval_expr(expr.left, remote_asn, depth).and_(
                self._eval_expr(expr.right, remote_asn, depth).not_()
            )
        raise TypeError(f"unknown AS expression {expr!r}")
