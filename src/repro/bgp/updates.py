"""BGP update streams: incremental route churn and its verification.

RIS and RouteViews publish both table snapshots and *update* feeds;
the paper argues RPSLyzer's throughput "allows processing large volumes
of BGP updates such as those collected by BGP collectors".  This module
provides that workload offline:

* :class:`UpdateEntry` — one announcement or withdrawal, serialized in
  the bgpdump update format (``BGP4MP|<ts>|A|...`` / ``|W|...``);
* :func:`synthesize_updates` — a churn generator over a route table:
  flaps (withdraw + re-announce), path changes (the AS picks its next
  best route), and new-prefix announcements, in timestamp order;
* :class:`StreamVerifier` — incremental verification: announcements are
  verified like table entries (the hop cache makes re-announcements
  nearly free); withdrawals update the tracked RIB only.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.bgp.table import DUMP_TIMESTAMP, RouteEntry, _parse_path
from repro.core.report import RouteReport
from repro.core.verify import Verifier
from repro.net.prefix import Prefix, PrefixError

__all__ = ["UpdateEntry", "synthesize_updates", "StreamVerifier", "parse_update_text"]


@dataclass(frozen=True, slots=True)
class UpdateEntry:
    """One BGP update: an announcement (with a route) or a withdrawal."""

    timestamp: int
    kind: str  # "A" (announce) or "W" (withdraw)
    collector: str
    peer_asn: int
    prefix: Prefix
    as_path: tuple[int, ...] = ()  # empty for withdrawals

    def to_line(self) -> str:
        """Render in bgpdump's one-line update format."""
        if self.kind == "W":
            return (
                f"BGP4MP|{self.timestamp}|W|{self.collector}|{self.peer_asn}|{self.prefix}"
            )
        path_text = " ".join(str(asn) for asn in self.as_path)
        return (
            f"BGP4MP|{self.timestamp}|A|{self.collector}|{self.peer_asn}|"
            f"{self.prefix}|{path_text}|IGP"
        )

    def to_route_entry(self) -> RouteEntry:
        """The announcement as a table entry (announcements only)."""
        if self.kind != "A":
            raise ValueError("withdrawals carry no route")
        return RouteEntry(
            collector=self.collector,
            peer_asn=self.peer_asn,
            prefix=self.prefix,
            as_path=self.as_path,
        )


def parse_update_text(text: str | Iterable[str]) -> Iterator[UpdateEntry]:
    """Parse bgpdump-style update lines; malformed lines are skipped."""
    lines = text.splitlines() if isinstance(text, str) else text
    for line in lines:
        parts = line.strip().split("|")
        if len(parts) < 6 or parts[0] != "BGP4MP" or parts[2] not in ("A", "W"):
            continue
        try:
            timestamp = int(parts[1])
            peer_asn = int(parts[4])
            prefix = Prefix.parse(parts[5])
        except (ValueError, PrefixError):
            continue
        if parts[2] == "W":
            yield UpdateEntry(timestamp, "W", parts[3], peer_asn, prefix)
            continue
        if len(parts) < 7:
            continue
        try:
            path, as_set = _parse_path(parts[6])
        except ValueError:  # garbage in the as-path field: skip the line
            continue
        if not path or as_set is not None:
            continue
        yield UpdateEntry(timestamp, "A", parts[3], peer_asn, prefix, path)


def synthesize_updates(
    table: Iterable[RouteEntry],
    duration: int = 3600,
    flap_probability: float = 0.05,
    path_change_probability: float = 0.03,
    seed: int = 13,
    start_timestamp: int = DUMP_TIMESTAMP,
) -> list[UpdateEntry]:
    """Churn a table into a timestamp-ordered update stream.

    Flapping routes withdraw then re-announce; path changes re-announce
    with the first transit hop replaced (the peer switched best route).
    """
    rng = random.Random(seed)
    updates: list[UpdateEntry] = []
    for entry in table:
        if entry.as_set is not None or len(entry.as_path) < 2:
            continue
        if rng.random() < flap_probability:
            down = start_timestamp + rng.randrange(duration)
            up = min(down + rng.randrange(30, 600), start_timestamp + duration)
            updates.append(
                UpdateEntry(down, "W", entry.collector, entry.peer_asn, entry.prefix)
            )
            updates.append(
                UpdateEntry(
                    up, "A", entry.collector, entry.peer_asn, entry.prefix, entry.as_path
                )
            )
        elif rng.random() < path_change_probability and len(entry.as_path) >= 3:
            when = start_timestamp + rng.randrange(duration)
            detour = (entry.as_path[0], entry.as_path[1] + 1, *entry.as_path[1:])
            updates.append(
                UpdateEntry(
                    when, "A", entry.collector, entry.peer_asn, entry.prefix, detour
                )
            )
    updates.sort(key=lambda update: (update.timestamp, update.peer_asn, str(update.prefix)))
    return updates


class StreamVerifier:
    """Incremental verification over an update stream.

    Tracks the per-(collector, peer, prefix) RIB and verifies every
    announcement; exposes counters for throughput accounting.
    """

    def __init__(self, verifier: Verifier):
        self.verifier = verifier
        self.rib: dict[tuple[str, int, Prefix], tuple[int, ...]] = {}
        self.announcements = 0
        self.withdrawals = 0
        self.implicit_withdrawals = 0

    def apply(self, update: UpdateEntry) -> RouteReport | None:
        """Apply one update; returns the report for announcements."""
        key = (update.collector, update.peer_asn, update.prefix)
        if update.kind == "W":
            self.withdrawals += 1
            self.rib.pop(key, None)
            return None
        self.announcements += 1
        if key in self.rib:
            self.implicit_withdrawals += 1
        self.rib[key] = update.as_path
        return self.verifier.verify_entry(update.to_route_entry())

    def run(self, updates: Iterable[UpdateEntry]) -> "StreamStats":
        """Apply a whole stream, aggregating announcement statuses."""
        from collections import Counter

        statuses: Counter = Counter()
        for update in updates:
            report = self.apply(update)
            if report is not None and report.ignored is None:
                for hop in report.hops:
                    statuses[hop.status] += 1
        return StreamStats(
            announcements=self.announcements,
            withdrawals=self.withdrawals,
            implicit_withdrawals=self.implicit_withdrawals,
            rib_size=len(self.rib),
            hop_statuses=statuses,
        )


@dataclass(slots=True)
class StreamStats:
    """Summary of one stream-verification run."""

    announcements: int
    withdrawals: int
    implicit_withdrawals: int
    rib_size: int
    hop_statuses: "object"
