"""The BGP substrate: AS topology, route propagation, and table dumps."""

from repro.bgp.table import RouteEntry, parse_table_text, route_entry_lines
from repro.bgp.topology import AsRelationships, Rel

__all__ = [
    "AsRelationships",
    "Rel",
    "RouteEntry",
    "parse_table_text",
    "route_entry_lines",
]
