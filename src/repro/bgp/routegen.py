"""Gao–Rexford route propagation over an AS topology.

The paper verifies 779 M routes observed at RIPE RIS and RouteViews
collectors.  Offline, this module produces the equivalent input: for every
origin AS it computes the route each other AS selects under the standard
valley-free export/selection model [Gao 2001]:

* **export**: routes learned from a customer (or originated) are exported
  to everyone; routes learned from a peer or provider only to customers;
* **selection**: prefer customer-learned over peer-learned over
  provider-learned routes, then shorter AS-paths, then the lower next-hop
  ASN (a deterministic stand-in for router-id tie-breaking).

Propagation runs in three phases (uphill, across, downhill), which realizes
exactly the valley-free path set.  Paths are tuples ``(self, ..., origin)``
— the AS-path the AS would announce (before prepending its own ASN again).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.bgp.table import RouteEntry
from repro.bgp.topology import AsRelationships
from repro.net.prefix import Prefix

__all__ = ["Collector", "propagate", "collector_routes", "RouteGenConfig"]

_FROM_CUSTOMER = 0
_FROM_PEER = 1
_FROM_PROVIDER = 2


def propagate(topology: AsRelationships, origin: int) -> dict[int, tuple[int, ...]]:
    """Best valley-free path from every AS to ``origin``.

    Returns ``{asn: (asn, ..., origin)}``; ASes with no valley-free route
    to the origin are absent.  The origin maps to ``(origin,)``.
    """
    # best[asn] = (type_rank, path_length, next_hop, path)
    best: dict[int, tuple[int, int, int, tuple[int, ...]]] = {
        origin: (_FROM_CUSTOMER, 0, origin, (origin,))
    }

    # Phase 1 — uphill: customer routes climb provider links, BFS by length.
    frontier = [origin]
    while frontier:
        next_frontier: list[int] = []
        for asn in sorted(frontier):
            rank, length, _, path = best[asn]
            for provider in sorted(topology.providers.get(asn, ())):
                if provider in path:
                    continue
                candidate = (_FROM_CUSTOMER, length + 1, asn, (provider,) + path)
                if provider not in best or candidate < best[provider]:
                    best[provider] = candidate
                    next_frontier.append(provider)
        frontier = next_frontier

    # Phase 2 — across: ASes holding customer routes export to peers once.
    uphill_holders = sorted(best)
    for asn in uphill_holders:
        rank, length, _, path = best[asn]
        if rank != _FROM_CUSTOMER:
            continue
        for peer in sorted(topology.peers.get(asn, ())):
            if peer in path:
                continue
            candidate = (_FROM_PEER, length + 1, asn, (peer,) + path)
            if peer not in best or candidate < best[peer]:
                best[peer] = candidate

    # Phase 3 — downhill: everything flows to customers, BFS by length.
    frontier = sorted(best)
    while frontier:
        next_frontier = []
        for asn in frontier:
            rank, length, _, path = best[asn]
            for customer in sorted(topology.customers.get(asn, ())):
                if customer in path:
                    continue
                candidate = (_FROM_PROVIDER, length + 1, asn, (customer,) + path)
                if customer not in best or candidate < best[customer]:
                    best[customer] = candidate
                    next_frontier.append(customer)
        frontier = next_frontier

    return {asn: entry[3] for asn, entry in best.items()}


@dataclass(slots=True)
class Collector:
    """A route collector and the ASes that feed it full tables."""

    name: str
    peer_asns: tuple[int, ...]


@dataclass(slots=True)
class RouteGenConfig:
    """Knobs for dump generation.

    ``prepend_probability`` injects AS-path prepending (removed by the
    verifier, as in the paper); ``as_set_probability`` injects BGP AS_SET
    aggregation markers (routes the paper ignores, 0.03%); and
    ``bare_peer_probability`` emits single-AS routes exported directly by a
    collector peer (ignored, 0.06%).
    """

    prepend_probability: float = 0.02
    max_prepends: int = 3
    as_set_probability: float = 0.0003
    bare_peer_probability: float = 0.0006
    # Community tags: blackhole (RFC 7999) on a trickle of routes, plus an
    # informational tag on a larger share — exercises community filters.
    blackhole_probability: float = 0.0005
    tagged_probability: float = 0.05
    seed: int = 7


def _decorate_path(
    path: tuple[int, ...], config: RouteGenConfig, rng: random.Random
) -> tuple[tuple[int, ...], frozenset[int] | None]:
    """Apply optional prepending / AS_SET aggregation to a path."""
    as_set: frozenset[int] | None = None
    if len(path) > 1 and rng.random() < config.prepend_probability:
        index = rng.randrange(len(path))
        repeats = rng.randint(1, config.max_prepends)
        path = path[: index + 1] + (path[index],) * repeats + path[index + 1 :]
    if len(path) > 2 and rng.random() < config.as_set_probability:
        as_set = frozenset({path[-1], path[-1] + 1})
    return path, as_set


def collector_routes(
    topology: AsRelationships,
    prefixes_by_origin: dict[int, list[Prefix]],
    collectors: list[Collector],
    config: RouteGenConfig | None = None,
) -> Iterator[RouteEntry]:
    """Generate the routes all collectors observe, origin by origin.

    Propagation state for one origin is discarded before the next, keeping
    memory flat regardless of topology size.
    """
    if config is None:
        config = RouteGenConfig()
    rng = random.Random(config.seed)
    peer_set: set[int] = set()
    for collector in collectors:
        peer_set.update(collector.peer_asns)

    for origin in sorted(prefixes_by_origin):
        prefixes = prefixes_by_origin[origin]
        if not prefixes:
            continue
        paths = propagate(topology, origin)
        for collector in collectors:
            for peer in collector.peer_asns:
                path = paths.get(peer)
                if path is None:
                    continue
                if len(path) == 1 and rng.random() >= config.bare_peer_probability:
                    # Peers originating the prefix themselves yield single-AS
                    # routes; emit only the configured trickle of them.
                    continue
                for prefix in prefixes:
                    decorated, as_set = _decorate_path(path, config, rng)
                    tags: set[tuple[int, int]] = set()
                    if rng.random() < config.blackhole_probability:
                        tags.add((65535, 666))
                    if rng.random() < config.tagged_probability:
                        tags.add((65000, origin % 65536))
                    yield RouteEntry(
                        collector=collector.name,
                        peer_asn=peer,
                        prefix=prefix,
                        as_path=decorated,
                        as_set=as_set,
                        communities=frozenset(tags),
                    )


def default_collectors(
    topology: AsRelationships, count: int = 4, peers_per_collector: int = 12, seed: int = 11
) -> list[Collector]:
    """Pick collector peers the way RIS/RouteViews skew: mostly large ASes.

    Half the peers are drawn from the best-connected ASes (transit cores
    peer with collectors disproportionately), half uniformly at random.
    """
    rng = random.Random(seed)
    ases = sorted(topology.ases())
    by_degree = sorted(ases, key=lambda asn: -len(topology.neighbors(asn)))
    top = by_degree[: max(peers_per_collector * count, 1)]
    collectors = []
    for index in range(count):
        big = rng.sample(top, min(peers_per_collector // 2, len(top)))
        small = rng.sample(ases, min(peers_per_collector - len(big), len(ases)))
        peers = tuple(sorted(set(big + small)))
        collectors.append(Collector(name=f"rrc{index:02d}", peer_asns=peers))
    return collectors
