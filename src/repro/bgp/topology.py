"""AS-level topology with business relationships.

The verification special cases (Section 5.1 of the paper) consult CAIDA's
AS-relationship database; this module models the same data: provider-
customer and peer-peer links, Tier-1 membership, and customer cones.  It
reads and writes CAIDA's ``as-rel`` text format::

    # comment lines start with '#'
    <provider>|<customer>|-1
    <peer>|<peer>|0
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Iterable

__all__ = ["Rel", "AsRelationships"]


class Rel(Enum):
    """The role of a *neighbor* relative to a given AS."""

    CUSTOMER = "customer"
    PROVIDER = "provider"
    PEER = "peer"


@dataclass(slots=True)
class AsRelationships:
    """Provider/customer/peer adjacency plus the Tier-1 clique.

    ``providers[a]`` is the set of a's providers, ``customers[a]`` its
    customers, ``peers[a]`` its settlement-free peers.  ``tier1`` may be
    populated from ground truth (synthetic worlds) or inferred.
    """

    providers: dict[int, set[int]] = field(default_factory=dict)
    customers: dict[int, set[int]] = field(default_factory=dict)
    peers: dict[int, set[int]] = field(default_factory=dict)
    tier1: set[int] = field(default_factory=set)
    _cone_cache: dict[int, frozenset[int]] = field(default_factory=dict, repr=False)

    def add_transit(self, provider: int, customer: int) -> None:
        """Register a provider-customer link."""
        self.providers.setdefault(customer, set()).add(provider)
        self.customers.setdefault(provider, set()).add(customer)
        self.providers.setdefault(provider, set())
        self.customers.setdefault(customer, set())
        self.peers.setdefault(provider, set())
        self.peers.setdefault(customer, set())
        self._cone_cache.clear()

    def add_peering(self, left: int, right: int) -> None:
        """Register a (symmetric) peer-peer link."""
        self.peers.setdefault(left, set()).add(right)
        self.peers.setdefault(right, set()).add(left)
        for asn in (left, right):
            self.providers.setdefault(asn, set())
            self.customers.setdefault(asn, set())
        self._cone_cache.clear()

    def ases(self) -> set[int]:
        """Every AS appearing in any relationship."""
        return set(self.providers) | set(self.customers) | set(self.peers)

    def neighbors(self, asn: int) -> set[int]:
        """All neighbors of an AS, regardless of relationship type."""
        return (
            self.providers.get(asn, set())
            | self.customers.get(asn, set())
            | self.peers.get(asn, set())
        )

    def rel(self, asn: int, neighbor: int) -> Rel | None:
        """The neighbor's role relative to ``asn`` (None if not adjacent).

        ``rel(a, b) is Rel.PROVIDER`` means *b is a provider of a*.
        """
        if neighbor in self.providers.get(asn, ()):  # b provides transit to a
            return Rel.PROVIDER
        if neighbor in self.customers.get(asn, ()):
            return Rel.CUSTOMER
        if neighbor in self.peers.get(asn, ()):
            return Rel.PEER
        return None

    def customer_cone(self, asn: int) -> frozenset[int]:
        """All ASes reachable downward from ``asn`` (excluding itself)."""
        cached = self._cone_cache.get(asn)
        if cached is not None:
            return cached
        cone: set[int] = set()
        stack = list(self.customers.get(asn, ()))
        while stack:
            current = stack.pop()
            if current in cone or current == asn:
                continue
            cone.add(current)
            stack.extend(self.customers.get(current, ()))
        result = frozenset(cone)
        self._cone_cache[asn] = result
        return result

    def infer_tier1(self) -> set[int]:
        """Infer the Tier-1 clique: provider-free ASes, mutually peered.

        Starts from all provider-free ASes with at least one peer and
        greedily drops the least-connected member until the remainder is a
        clique.  Synthetic worlds carry ground truth in :attr:`tier1`; this
        is for externally supplied ``as-rel`` files.
        """
        candidates = {
            asn
            for asn in self.ases()
            if not self.providers.get(asn) and self.peers.get(asn)
        }
        while candidates:
            degree = {
                asn: len(self.peers.get(asn, set()) & candidates) for asn in candidates
            }
            worst = min(candidates, key=lambda asn: (degree[asn], -asn))
            if degree[worst] >= len(candidates) - 1:
                break
            candidates.discard(worst)
        return candidates

    # -- CAIDA as-rel serialization ------------------------------------

    def to_as_rel_text(self) -> str:
        """Serialize to CAIDA's ``as-rel`` format (deterministic order)."""
        lines = ["# provider|customer|-1 , peer|peer|0"]
        for provider in sorted(self.customers):
            for customer in sorted(self.customers[provider]):
                lines.append(f"{provider}|{customer}|-1")
        emitted: set[tuple[int, int]] = set()
        for left in sorted(self.peers):
            for right in sorted(self.peers[left]):
                key = (min(left, right), max(left, right))
                if key in emitted:
                    continue
                emitted.add(key)
                lines.append(f"{key[0]}|{key[1]}|0")
        return "\n".join(lines) + "\n"

    @classmethod
    def from_as_rel_text(cls, text: str | Iterable[str]) -> "AsRelationships":
        """Parse CAIDA's ``as-rel`` format; malformed lines are skipped."""
        relationships = cls()
        lines = text.splitlines() if isinstance(text, str) else text
        for line in lines:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split("|")
            if len(parts) < 3:
                continue
            try:
                left, right, code = int(parts[0]), int(parts[1]), int(parts[2])
            except ValueError:
                continue
            if code == -1:
                relationships.add_transit(left, right)
            elif code == 0:
                relationships.add_peering(left, right)
        relationships.tier1 = relationships.infer_tier1()
        return relationships

    def save(self, path: str | Path) -> None:
        """Write the ``as-rel`` file."""
        Path(path).write_text(self.to_as_rel_text(), encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "AsRelationships":
        """Read an ``as-rel`` file."""
        return cls.from_as_rel_text(Path(path).read_text(encoding="utf-8"))
