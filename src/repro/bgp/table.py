"""BGP table dump I/O in a bgpdump-style one-line format.

Routes are serialized the way ``bgpdump -m`` renders MRT TABLE_DUMP2
records, which is the de-facto interchange format for RIS/RouteViews data::

    TABLE_DUMP2|<unix-time>|B|<collector>|<peer-asn>|<prefix>|<as-path>|IGP

AS_SET segments inside an AS-path appear as ``{1,2,3}``; the paper ignores
routes containing them (their use is deprecated), and the verifier does the
same, so the parser preserves them as a marker rather than dropping the
route silently.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.net.prefix import Prefix, PrefixError

__all__ = ["RouteEntry", "route_entry_lines", "parse_table_text", "parse_table_file", "write_table_file"]

_AS_SET_RE = re.compile(r"\{([0-9,\s]+)\}")

DUMP_TIMESTAMP = 1687478400  # 2023-06-23, the paper's BGP snapshot date.


@dataclass(frozen=True, slots=True)
class RouteEntry:
    """One observed route: ⟨prefix, AS-path⟩ plus collection metadata.

    ``as_path`` is neighbor-first, origin-last, *with* any prepending as
    observed.  ``as_set`` holds the members of a trailing AS_SET aggregate
    segment if one was present (None otherwise).
    """

    collector: str
    peer_asn: int
    prefix: Prefix
    as_path: tuple[int, ...]
    as_set: frozenset[int] | None = None
    communities: frozenset[tuple[int, int]] = frozenset()

    @property
    def origin(self) -> int:
        """The origin AS (last ASN on the path)."""
        return self.as_path[-1]

    def deprepended_path(self) -> tuple[int, ...]:
        """The AS-path with consecutive duplicates collapsed."""
        collapsed: list[int] = []
        for asn in self.as_path:
            if not collapsed or collapsed[-1] != asn:
                collapsed.append(asn)
        return tuple(collapsed)

    def to_line(self, timestamp: int = DUMP_TIMESTAMP) -> str:
        """Render the bgpdump-style line."""
        path_text = " ".join(str(asn) for asn in self.as_path)
        if self.as_set:
            members = ",".join(str(asn) for asn in sorted(self.as_set))
            path_text = f"{path_text} {{{members}}}"
        line = (
            f"TABLE_DUMP2|{timestamp}|B|{self.collector}|{self.peer_asn}|"
            f"{self.prefix}|{path_text}|IGP"
        )
        if self.communities:
            tags = " ".join(
                f"{high}:{low}" for high, low in sorted(self.communities)
            )
            line += f"|{tags}"
        return line


def route_entry_lines(entries: Iterable[RouteEntry]) -> Iterator[str]:
    """Render entries to dump lines."""
    for entry in entries:
        yield entry.to_line()


def _parse_path(text: str) -> tuple[tuple[int, ...], frozenset[int] | None]:
    as_set: frozenset[int] | None = None
    match = _AS_SET_RE.search(text)
    if match is not None:
        members = frozenset(
            int(token) for token in match.group(1).replace(",", " ").split()
        )
        as_set = members
        text = _AS_SET_RE.sub(" ", text)
    path = tuple(int(token) for token in text.split())
    return path, as_set


def _parse_communities(text: str) -> frozenset[tuple[int, int]]:
    tags = set()
    for token in text.split():
        high, _, low = token.partition(":")
        if high.isdigit() and low.isdigit():
            tags.add((int(high), int(low)))
    return frozenset(tags)


def parse_table_text(text: str | Iterable[str]) -> Iterator[RouteEntry]:
    """Parse dump lines; malformed lines are skipped (as bgpdump users do)."""
    lines = text.splitlines() if isinstance(text, str) else text
    for line in lines:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split("|")
        if len(parts) < 7 or parts[0] != "TABLE_DUMP2":
            continue
        try:
            prefix = Prefix.parse(parts[5])
            path, as_set = _parse_path(parts[6])
            peer_asn = int(parts[4])
            communities = _parse_communities(parts[8]) if len(parts) > 8 else frozenset()
        except (PrefixError, ValueError):
            continue
        if not path and as_set is None:
            continue
        yield RouteEntry(
            collector=parts[3],
            peer_asn=peer_asn,
            prefix=prefix,
            as_path=path,
            as_set=as_set,
            communities=communities,
        )


def parse_table_file(path: str | Path) -> Iterator[RouteEntry]:
    """Stream-parse a dump file."""
    with open(path, encoding="utf-8") as stream:
        yield from parse_table_text(stream)


def write_table_file(path: str | Path, entries: Iterable[RouteEntry]) -> int:
    """Write entries to a dump file; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as stream:
        for entry in entries:
            stream.write(entry.to_line())
            stream.write("\n")
            count += 1
    return count
