"""Runtime faults: dead workers and flaky networks, on demand.

These are the injection points the mutators cannot reach — failures of
the *processes and sockets* around the pipeline rather than of its
inputs.  Both are built to be driven from tests and the chaos harness:

* :class:`KillWorkerChunk` / :class:`RaiseOnChunk` plug into
  ``verify_table(fault_hook=...)`` (picklable, so they survive the trip
  into spawn-started workers);
* :class:`KillServeWorker` / :class:`HungWorker` act on the serve
  supervisor's worker processes *from outside*, by PID — SIGKILL for a
  crash, SIGSTOP for a wedge the heartbeat must detect.  External
  delivery matters: an in-worker hook would fire again in every
  respawned worker and the pool could never heal;
* :class:`FlakyTcpProxy` sits in front of a live server and RST-drops
  the first N connections, exercising client retry paths;
* :class:`SlowClient` opens a connection and then just sits on it,
  wedging a thread-per-connection handler — the failure
  ``WhoisServer.stop()`` must report rather than hang on.
"""

from __future__ import annotations

import os
import signal
import socket
import struct
import threading
from dataclasses import dataclass

__all__ = [
    "KillWorkerChunk",
    "RaiseOnChunk",
    "KillServeWorker",
    "HungWorker",
    "FlakyTcpProxy",
    "SlowClient",
]


@dataclass(frozen=True)
class KillWorkerChunk:
    """Kill the worker process that picks up one specific chunk.

    The hook fires in the worker before verification, so the chunk's work
    is lost entirely — the parent sees ``BrokenProcessPool``.  The kill
    repeats every time the chunk is retried in a worker (no cross-process
    state exists to count attempts), which is exactly what drives the
    requeue path to its serial fallback.
    """

    chunk_index: int
    signum: int = signal.SIGKILL

    def __call__(self, index: int) -> None:
        if index == self.chunk_index:
            os.kill(os.getpid(), self.signum)


@dataclass(frozen=True)
class RaiseOnChunk:
    """Raise inside the worker for one specific chunk (worker survives).

    Distinguishes the chunk-scoped retry path from pool breakage: the
    exception travels back through the future, the pool stays alive.
    """

    chunk_index: int
    message: str = "injected chunk failure"

    def __call__(self, index: int) -> None:
        if index == self.chunk_index:
            raise RuntimeError(f"{self.message} (chunk {index})")


@dataclass(frozen=True)
class KillServeWorker:
    """Crash one serve-supervisor worker: SIGKILL it by PID.

    Target a PID from ``WorkerSupervisor.worker_pids()``.  The
    supervisor must fail only that worker's in-flight batch (retried on
    another worker), respawn a replacement, and keep every client
    answered.
    """

    signum: int = signal.SIGKILL

    def __call__(self, pid: int) -> None:
        os.kill(pid, self.signum)


@dataclass(frozen=True)
class HungWorker:
    """Wedge one serve-supervisor worker: SIGSTOP it by PID.

    A stopped worker answers neither batches (caught by the per-batch
    ``hang_timeout``) nor heartbeat pings (caught within
    ``heartbeat_interval + heartbeat_timeout`` while idle); either way
    the supervisor must SIGKILL and replace it.  SIGKILL terminates a
    stopped process, so no explicit SIGCONT cleanup is needed.
    """

    def __call__(self, pid: int) -> None:
        os.kill(pid, signal.SIGSTOP)


class FlakyTcpProxy:
    """A TCP proxy that RST-drops the first ``failures`` connections.

    Later connections are piped byte-for-byte to the target.  The drop
    uses ``SO_LINGER(0)`` so the client sees a hard connection reset (an
    ``OSError``), not a polite empty response — the failure mode retry
    logic must actually handle.

    Use as a context manager::

        with WhoisServer(ir) as server, FlakyTcpProxy("127.0.0.1", server.port, failures=2) as proxy:
            text = whois_query("127.0.0.1", proxy.port, "AS64512", retries=3)
    """

    def __init__(
        self,
        target_host: str,
        target_port: int,
        failures: int = 1,
        host: str = "127.0.0.1",
    ):
        self.target = (target_host, target_port)
        self.failures = failures
        self.connections = 0
        self._listener = socket.create_server((host, 0))
        self._stopping = threading.Event()
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The proxy's bound TCP port."""
        return self._listener.getsockname()[1]

    def start(self) -> "FlakyTcpProxy":
        """Accept connections in a daemon thread."""
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting and close the listener."""
        self._stopping.set()
        self._listener.close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "FlakyTcpProxy":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _serve(self) -> None:
        while not self._stopping.is_set():
            try:
                client, _ = self._listener.accept()
            except OSError:
                return
            self.connections += 1
            if self.connections <= self.failures:
                # linger(0) turns close() into a RST: the client's next
                # read/write raises instead of seeing a clean EOF.
                client.setsockopt(
                    socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
                )
                client.close()
                continue
            threading.Thread(target=self._pipe, args=(client,), daemon=True).start()

    def _pipe(self, client: socket.socket) -> None:
        try:
            upstream = socket.create_connection(self.target, timeout=5)
        except OSError:
            client.close()
            return
        back = threading.Thread(
            target=self._pump, args=(upstream, client), daemon=True
        )
        back.start()
        self._pump(client, upstream)
        back.join(timeout=5)
        for sock in (client, upstream):
            try:
                sock.close()
            except OSError:
                pass

    @staticmethod
    def _pump(source: socket.socket, sink: socket.socket) -> None:
        try:
            while data := source.recv(65536):
                sink.sendall(data)
        except OSError:
            pass
        finally:
            try:
                sink.shutdown(socket.SHUT_WR)
            except OSError:
                pass


class SlowClient:
    """A client that connects and then never says anything.

    A thread-per-connection server blocks its handler on the first read
    of such a connection; servers that join handler threads on shutdown
    must therefore time the join out and *report* the wedged thread (see
    :meth:`repro.irr.whois.WhoisServer.stop`).  Optionally sends a
    partial line first, so the handler is mid-request rather than
    waiting for one.

    Use as a context manager; ``close()`` releases the socket so the
    wedged handler unblocks afterwards.
    """

    def __init__(self, host: str, port: int, partial: bytes = b""):
        self._sock = socket.create_connection((host, port), timeout=10)
        if partial:
            self._sock.sendall(partial)  # no trailing newline: never a query

    def close(self) -> None:
        """Drop the connection, unwedging any handler blocked on it."""
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass

    def __enter__(self) -> "SlowClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
