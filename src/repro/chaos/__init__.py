"""Fault injection for the pipeline (see ``docs/robustness.md``).

The paper's pipeline ingests dumps published by third parties and runs
for hours over hundreds of millions of routes; the interesting failures
are therefore *environmental* — truncated or binary-spliced dumps,
pathologically large objects, corrupt table lines, workers killed by the
OOM killer, flaky WHOIS servers.  This package makes those failures
reproducible:

* :mod:`repro.chaos.mutators` — seeded, composable corruptions of dump
  and table text;
* :mod:`repro.chaos.faults` — runtime faults (kill a verify worker at a
  chosen chunk, SIGKILL/SIGSTOP a serve-supervisor worker by PID, a TCP
  proxy that drops the first N connections, a slow client that wedges
  thread-per-connection handlers);
* :mod:`repro.chaos.harness` — :func:`run_chaos` drives every mutator
  and fault against a synthetic world and returns a structured
  :class:`ChaosReport` (also ``rpslyzer chaos --seed 42``).

Everything is deterministic under a seed: a failing chaos run is a
repro, not an anecdote.
"""

from repro.chaos.faults import (
    FlakyTcpProxy,
    HungWorker,
    KillServeWorker,
    KillWorkerChunk,
    RaiseOnChunk,
    SlowClient,
)
from repro.chaos.harness import ChaosCheck, ChaosReport, run_chaos
from repro.chaos.mutators import DUMP_MUTATORS, MUTATORS, TABLE_MUTATORS

__all__ = [
    "ChaosCheck",
    "ChaosReport",
    "DUMP_MUTATORS",
    "FlakyTcpProxy",
    "HungWorker",
    "KillServeWorker",
    "KillWorkerChunk",
    "MUTATORS",
    "RaiseOnChunk",
    "SlowClient",
    "TABLE_MUTATORS",
    "run_chaos",
]
