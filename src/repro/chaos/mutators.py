"""Seeded corruptions of dump and table text.

Every mutator has the same shape — ``mutator(rng, text) -> bytes`` — so
the harness (and tests) can drive them uniformly: feed each one its own
:class:`random.Random` and the clean text, get back the damaged bytes to
write to disk.  Returning *bytes* is deliberate: several corruptions
(binary splice, mixed encodings) cannot be represented as a clean Python
string, and real damage arrives as bytes anyway.

``DUMP_MUTATORS`` applies to RPSL dump files, ``TABLE_MUTATORS`` to
TABLE_DUMP2 route-table text; ``MUTATORS`` is their union.
"""

from __future__ import annotations

import random
from typing import Callable, Dict

__all__ = [
    "Mutator",
    "DUMP_MUTATORS",
    "TABLE_MUTATORS",
    "MUTATORS",
    "truncate_mid_paragraph",
    "splice_binary",
    "mixed_encoding",
    "duplicate_attributes",
    "reorder_attributes",
    "oversized_paragraph",
    "corrupt_table",
]

Mutator = Callable[[random.Random, str], bytes]

# The oversized-paragraph mutator appends one object of roughly this many
# bytes (ISSUE: "multi-MB paragraphs, 10k-member sets").
OVERSIZED_MEMBERS = 10_000
OVERSIZED_PAD_BYTES = 2 << 20


def truncate_mid_paragraph(rng: random.Random, text: str) -> bytes:
    """Cut the dump partway through a line in its second half.

    Models an interrupted FTP/rsync transfer: the final paragraph ends
    mid-attribute with no trailing newline.
    """
    lines = text.splitlines(keepends=True)
    candidates = [
        index
        for index, line in enumerate(lines)
        if line.strip() and index > len(lines) // 2
    ]
    cut = rng.choice(candidates) if candidates else len(lines) - 1
    line = lines[cut].rstrip("\n")
    partial = line[: rng.randrange(1, max(2, len(line)))]
    return "".join(lines[:cut] + [partial]).encode("utf-8")


def splice_binary(rng: random.Random, text: str) -> bytes:
    """Insert a run of raw bytes (NULs, invalid UTF-8) at a random offset.

    Models disk corruption or a compressed stream flushed mid-block.
    """
    raw = bytearray(text.encode("utf-8"))
    blob = bytes(rng.randrange(256) for _ in range(rng.randrange(32, 129)))
    position = rng.randrange(len(raw) + 1)
    raw[position:position] = b"\x00\xff\xfe" + blob
    return bytes(raw)


def mixed_encoding(rng: random.Random, text: str) -> bytes:
    """Insert a Latin-1-encoded attribute line into a UTF-8 dump.

    Real IRR dumps mix encodings in free-text attributes; the decoder's
    ``errors="replace"`` must absorb this without derailing the lexer.
    """
    lines = text.splitlines(keepends=True)
    junk = "remarks:        réseau café télécom\n".encode("latin-1")
    insert_at = rng.randrange(len(lines) + 1)
    head = "".join(lines[:insert_at]).encode("utf-8")
    tail = "".join(lines[insert_at:]).encode("utf-8")
    return head + junk + tail


def duplicate_attributes(rng: random.Random, text: str) -> bytes:
    """Repeat random attribute lines inside a handful of paragraphs.

    Duplicated attributes are common IRR hygiene failures; parsing must
    stay deterministic (first or merged wins, never a crash).
    """
    blocks = text.split("\n\n")
    for index in rng.sample(range(len(blocks)), k=min(5, len(blocks))):
        lines = blocks[index].split("\n")
        if len(lines) < 2:
            continue
        target = rng.randrange(1, len(lines))
        lines[target:target] = [lines[target]] * rng.randrange(1, 4)
        blocks[index] = "\n".join(lines)
    return "\n\n".join(blocks).encode("utf-8")


def reorder_attributes(rng: random.Random, text: str) -> bytes:
    """Shuffle the attribute order of a handful of paragraphs.

    The class attribute stays first (it names the object); continuation
    lines move with their attribute so the shuffle stays syntactic.
    """
    blocks = text.split("\n\n")
    for index in rng.sample(range(len(blocks)), k=min(5, len(blocks))):
        lines = blocks[index].split("\n")
        if len(lines) < 3:
            continue
        groups: list[list[str]] = []
        for line in lines[1:]:
            if line[:1] in (" ", "\t", "+") and groups:
                groups[-1].append(line)
            else:
                groups.append([line])
        rng.shuffle(groups)
        blocks[index] = "\n".join([lines[0]] + [line for group in groups for line in group])
    return "\n\n".join(blocks).encode("utf-8")


def oversized_paragraph(rng: random.Random, text: str) -> bytes:
    """Append one pathologically large object (~2 MB, 10k-member set).

    Under production :class:`~repro.rpsl.lexer.LexLimits` this parses as a
    (huge) as-set; under tighter caps it must be dropped as ``OVERSIZED``
    without ever being buffered whole.
    """
    members = ", ".join(
        f"AS{64512 + rng.randrange(50_000)}" for _ in range(OVERSIZED_MEMBERS)
    )
    pad_line = "remarks:        " + "x" * 500
    pad_count = OVERSIZED_PAD_BYTES // (len(pad_line) + 1) + 1
    paragraph = (
        "as-set:         AS-CHAOS-HUGE\n"
        f"members:        {members}\n" + "\n".join([pad_line] * pad_count) + "\n"
        "source:         CHAOS\n"
    )
    base = text if text.endswith("\n") else text + "\n"
    return (base + "\n" + paragraph).encode("utf-8")


def corrupt_table(rng: random.Random, text: str) -> bytes:
    """Damage TABLE_DUMP2 lines: drop, truncate mid-field, garbage fields.

    The table parser's contract is to skip what it cannot read and keep
    streaming; roughly 15% of lines get damaged here.
    """
    out = []
    for line in text.splitlines():
        roll = rng.random()
        if roll < 0.04:
            continue
        if roll < 0.08:
            line = line[: rng.randrange(0, max(1, len(line)))]
        elif roll < 0.12:
            fields = line.split("|")
            fields[rng.randrange(len(fields))] = "garbage"
            line = "|".join(fields)
        elif roll < 0.15:
            line += "\x00\xff"
        out.append(line)
    return ("\n".join(out) + "\n").encode("utf-8")


DUMP_MUTATORS: Dict[str, Mutator] = {
    "truncate-mid-paragraph": truncate_mid_paragraph,
    "splice-binary": splice_binary,
    "mixed-encoding": mixed_encoding,
    "duplicate-attributes": duplicate_attributes,
    "reorder-attributes": reorder_attributes,
    "oversized-paragraph": oversized_paragraph,
}

TABLE_MUTATORS: Dict[str, Mutator] = {
    "corrupt-table": corrupt_table,
}

MUTATORS: Dict[str, Mutator] = {**DUMP_MUTATORS, **TABLE_MUTATORS}
