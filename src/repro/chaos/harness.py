"""The chaos harness: drive every mutator and fault, report degradation.

:func:`run_chaos` builds a seeded synthetic world, damages its dumps and
route table with every mutator in the catalogue, kills a verification
worker mid-run, puts a flaky proxy in front of the WHOIS server, wedges
its shutdown with a slow client, and floods the resident serve daemon
past its queue bound — then asserts the pipeline's resilience contract
on each: **no crash, no hang, bounded memory, and a structured account
of what was lost**.  The
result is a :class:`ChaosReport`: pass/fail checks plus the aggregated
:class:`~repro.core.degradation.DegradationReport`.

Everything derives from one seed, so ``rpslyzer chaos --seed 42`` is a
deterministic regression gate (CI runs it as the ``chaos-smoke`` job).
"""

from __future__ import annotations

import gzip
import http.client
import json
import random
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from repro.bgp.routegen import collector_routes
from repro.bgp.table import parse_table_text, route_entry_lines
from repro.chaos.faults import (
    FlakyTcpProxy,
    HungWorker,
    KillServeWorker,
    KillWorkerChunk,
    SlowClient,
)
from repro.chaos.mutators import DUMP_MUTATORS, TABLE_MUTATORS
from repro.core.degradation import DegradationReport
from repro.core.parallel import verify_table
from repro.irr.dump import parse_dump_file, parse_dump_text
from repro.irr.synth import build_world, default_config, tiny_config
from repro.irr.whois import WhoisServer, whois_query
from repro.obs.trace import (
    TraceConfig,
    Tracer,
    canonical_events,
    route_trace_id,
    use_tracer,
)
from repro.rpsl.errors import ErrorKind
from repro.rpsl.lexer import LexLimits

__all__ = ["ChaosCheck", "ChaosReport", "run_chaos", "CHAOS_LIMITS"]

# Tight ingestion caps so the oversized mutator actually trips them (the
# production defaults allow 16 MB objects; chaos wants the drop path).
CHAOS_LIMITS = LexLimits(
    max_object_lines=2000, max_object_bytes=256 << 10, max_line_bytes=128 << 10
)


@dataclass(slots=True)
class ChaosCheck:
    """One assertion of the resilience contract."""

    name: str
    ok: bool
    detail: str = ""

    def as_dict(self) -> dict:
        """JSON-able form of the check."""
        return {"name": self.name, "ok": self.ok, "detail": self.detail}


@dataclass(slots=True)
class ChaosReport:
    """Everything one chaos run established."""

    seed: int
    preset: str
    checks: list[ChaosCheck] = field(default_factory=list)
    degradation: DegradationReport = field(default_factory=DegradationReport)
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        """True when every check passed."""
        return all(check.ok for check in self.checks)

    def as_dict(self) -> dict:
        """JSON-able form of the whole run."""
        return {
            "seed": self.seed,
            "preset": self.preset,
            "ok": self.ok,
            "elapsed_s": round(self.elapsed_s, 3),
            "checks": [check.as_dict() for check in self.checks],
            "degradation": self.degradation.as_dict(),
        }

    def render(self) -> str:
        """A human-readable run summary."""
        lines = [
            f"chaos run: seed={self.seed} preset={self.preset} "
            f"checks={len(self.checks)} elapsed={self.elapsed_s:.1f}s"
        ]
        for check in self.checks:
            mark = "ok  " if check.ok else "FAIL"
            detail = f" — {check.detail}" if check.detail else ""
            lines.append(f"  {mark} {check.name}{detail}")
        lines.append(f"degradation ({len(self.degradation)} events):")
        for key, count in sorted(self.degradation.by_kind().items()):
            lines.append(f"  {key}: {count}")
        lines.append("result: " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)


def _rng_for(seed: int, name: str) -> random.Random:
    # str seeding hashes the bytes (PYTHONHASHSEED-independent), so every
    # mutator gets its own deterministic stream.
    return random.Random(f"{seed}:{name}")


def run_chaos(
    seed: int = 42,
    preset: str = "tiny",
    processes: int = 2,
    only: str | None = None,
) -> ChaosReport:
    """Run the fault-injection suite against a seeded world.

    ``only="serve-supervisor"`` runs just the serve worker-pool layer
    (SIGKILL and SIGSTOP faults under flood) — the CI ``chaos-serve``
    job; ``None`` runs everything.
    """
    started = time.monotonic()
    report = ChaosReport(seed=seed, preset=preset)
    check = report.checks.append

    config = tiny_config(seed) if preset == "tiny" else default_config(seed)
    world = build_world(config)
    if only == "serve-supervisor":
        entries = list(
            collector_routes(world.topology, world.announced, world.collectors)
        )
        report.degradation.merge(
            _serve_supervisor_layer(check, world.merged_ir(), world, entries)
        )
        report.elapsed_s = time.monotonic() - started
        return report
    if only is not None:
        raise ValueError(f"unknown chaos layer {only!r} (try 'serve-supervisor')")
    # The largest dump gives the mutators the most structure to damage.
    irr = max(world.irr_dumps, key=lambda name: len(world.irr_dumps[name]))
    clean_text = world.irr_dumps[irr]
    clean_ir, clean_errors = parse_dump_text(clean_text, source=irr, limits=CHAOS_LIMITS)
    clean_objects = sum(clean_ir.counts().values())

    with tempfile.TemporaryDirectory(prefix="rpslyzer-chaos-") as tmp:
        tmpdir = Path(tmp)

        # -- layer 1: ingestion under every dump mutator --------------------
        for name, mutator in DUMP_MUTATORS.items():
            damaged = mutator(_rng_for(seed, name), clean_text)
            path = tmpdir / f"{irr.lower()}-{name}.db"
            path.write_bytes(damaged)
            try:
                ir, errors = parse_dump_file(path, source=irr, limits=CHAOS_LIMITS)
            except Exception as exc:  # noqa: BLE001 - the contract under test
                check(ChaosCheck(f"ingest/{name}", False, f"raised {exc!r}"))
                continue
            kinds = errors.count_by_kind()
            for kind, count in kinds.items():
                report.degradation.record("ingest", kind.value, name, count)
            objects = sum(ir.counts().values())
            detail = f"{objects} objects, {len(errors)} issues"
            check(ChaosCheck(f"ingest/{name}", True, detail))
            if name == "truncate-mid-paragraph":
                check(
                    ChaosCheck(
                        "ingest/truncation-recorded",
                        ErrorKind.TRUNCATED in kinds,
                        "final partial paragraph dropped and recorded",
                    )
                )
            if name == "oversized-paragraph":
                check(
                    ChaosCheck(
                        "ingest/oversized-bounded-memory",
                        ErrorKind.OVERSIZED in kinds and objects <= clean_objects,
                        "over-cap object dropped without buffering it whole",
                    )
                )

        # -- gzip transparency ----------------------------------------------
        gz_path = tmpdir / f"{irr.lower()}.db.gz"
        with gzip.open(gz_path, "wt", encoding="utf-8") as stream:
            stream.write(clean_text)
        gz_ir, gz_errors = parse_dump_file(gz_path, source=irr, limits=CHAOS_LIMITS)
        check(
            ChaosCheck(
                "ingest/gzip-roundtrip",
                sum(gz_ir.counts().values()) == clean_objects
                and len(gz_errors) == len(clean_errors),
                f"{clean_objects} objects through .gz",
            )
        )
        garbage = tmpdir / "garbage.db.gz"
        garbage.write_bytes(b"\x1f\x8b" + bytes(_rng_for(seed, "gz").randrange(256) for _ in range(512)))
        _, bad_errors = parse_dump_file(garbage, limits=CHAOS_LIMITS)
        bad_kinds = bad_errors.count_by_kind()
        if ErrorKind.UNREADABLE_INPUT in bad_kinds:
            report.degradation.record("ingest", "unreadable-input", "garbage-gzip")
        check(
            ChaosCheck(
                "ingest/garbage-gzip",
                ErrorKind.UNREADABLE_INPUT in bad_kinds,
                "corrupt compressed stream recorded, not raised",
            )
        )

    # -- layer 1b: route-table corruption ------------------------------------
    entries = list(
        collector_routes(world.topology, world.announced, world.collectors)
    )
    table_text = "\n".join(route_entry_lines(entries)) + "\n"
    for name, mutator in TABLE_MUTATORS.items():
        damaged = mutator(_rng_for(seed, name), table_text)
        try:
            parsed = parse_table_text(damaged.decode("utf-8", errors="replace"))
            kept = sum(1 for _ in parsed)
        except Exception as exc:  # noqa: BLE001 - the contract under test
            check(ChaosCheck(f"table/{name}", False, f"raised {exc!r}"))
            continue
        if kept < len(entries):
            report.degradation.record(
                "table", "lines-dropped", name, len(entries) - kept
            )
        check(
            ChaosCheck(
                f"table/{name}",
                0 < kept <= len(entries),
                f"kept {kept}/{len(entries)} routes",
            )
        )

    # -- layer 2: verification with a worker killed mid-run -------------------
    ir = world.merged_ir()
    baseline = verify_table(ir, world.topology, entries, processes=1)
    chunk_size = max(1, len(entries) // 8)
    chaotic = verify_table(
        ir,
        world.topology,
        entries,
        processes=processes,
        chunk_size=chunk_size,
        fault_hook=KillWorkerChunk(1),
    )
    expected = baseline.summary()
    observed = chaotic.summary()
    expected.pop("degradation")
    observed.pop("degradation")
    check(
        ChaosCheck(
            "verify/worker-kill-exact-stats",
            observed == expected,
            f"{len(entries)} routes, chunk_size={chunk_size}, worker SIGKILLed",
        )
    )
    kinds = chaotic.degradation.by_kind()
    check(
        ChaosCheck(
            "verify/degradation-recorded",
            kinds.get("verify/worker-lost", 0) >= 1
            and kinds.get("verify/chunk-serial-fallback", 0) >= 1,
            str(dict(sorted(kinds.items()))),
        )
    )
    report.degradation.merge(chaotic.degradation)

    # -- layer 2b: decision traces survive worker death -----------------------
    # The same table traced serially and in parallel with a SIGKILLed worker
    # must canonicalize to the same events (spilled per-worker files +
    # merge-time dedup make chunk retries idempotent), and tail sampling
    # must have kept every route with an unverified hop.
    trace_config = TraceConfig(sample_rate=7, seed=seed)
    unverified_routes: set[str] = set()

    def note_unverified(route_report) -> None:
        if any(hop.status.label == "unverified" for hop in route_report.hops):
            unverified_routes.add(route_trace_id(route_report.entry, trace_config.seed))

    with use_tracer(Tracer(trace_config)) as serial_tracer:
        verify_table(
            ir, world.topology, entries, processes=1, on_report=note_unverified
        )
    with use_tracer(Tracer(trace_config)) as chaos_tracer:
        verify_table(
            ir,
            world.topology,
            entries,
            processes=processes,
            chunk_size=chunk_size,
            fault_hook=KillWorkerChunk(1),
        )
    check(
        ChaosCheck(
            "trace/survives-worker-kill",
            canonical_events(serial_tracer.events)
            == canonical_events(chaos_tracer.events),
            f"{chaos_tracer.emitted} events, worker SIGKILLed mid-run",
        )
    )
    traced = {
        event["trace"]
        for event in chaos_tracer.events
        if event.get("event") == "route"
    }
    check(
        ChaosCheck(
            "trace/unverified-coverage",
            unverified_routes <= traced,
            f"{len(unverified_routes)} unverified route(s), all traced",
        )
    )

    # -- layer 3: WHOIS behind a flaky network --------------------------------
    asn = min(ir.aut_nums)
    with WhoisServer(ir) as server:
        with FlakyTcpProxy("127.0.0.1", server.port, failures=2) as proxy:
            try:
                answer = whois_query(
                    "127.0.0.1", proxy.port, f"AS{asn}", retries=4, backoff=0.02
                )
                ok = "aut-num" in answer
                detail = f"answered after {proxy.connections} connections"
            except OSError as exc:
                ok, detail = False, f"raised {exc!r}"
            if proxy.connections > 1:
                report.degradation.record(
                    "whois", "connection-retried", count=proxy.connections - 1
                )
            check(ChaosCheck("whois/retry-through-flaky-proxy", ok, detail))
        overlong = whois_query("127.0.0.1", server.port, "A" * 8192)
        check(
            ChaosCheck(
                "whois/query-line-cap",
                overlong.startswith("F query line too long"),
                "over-long query refused, connection dropped",
            )
        )

    # -- layer 3b: WHOIS shutdown wedged by a slow client ----------------------
    # A client that connects and never completes a query blocks its handler
    # thread on the first read; stop() must time the join out and *report*
    # the wedged thread instead of hanging or silently leaking it.
    server = WhoisServer(ir).start()
    with SlowClient("127.0.0.1", server.port, partial=b"AS"):
        time.sleep(0.1)  # let the handler thread reach its blocking read
        shutdown = server.stop(join_timeout=0.3)
    leaked = shutdown.by_kind().get("whois/handler-thread-leaked", 0)
    report.degradation.merge(shutdown)
    check(
        ChaosCheck(
            "whois/slow-client-shutdown-reported",
            leaked >= 1,
            f"{leaked} wedged handler thread(s) reported, stop() returned",
        )
    )

    # -- layer 4: the resident serve daemon under flood ------------------------
    report.degradation.merge(_serve_layer(check, ir, world, entries))

    # -- layer 4b: the supervised worker pool under crash/hang faults ----------
    report.degradation.merge(_serve_supervisor_layer(check, ir, world, entries))

    report.elapsed_s = time.monotonic() - started
    return report


def _serve_layer(check, ir, world, entries) -> DegradationReport:
    """Flood the serve daemon past its queue bound; assert clean behavior.

    The contract: every request gets a definite answer — a verdict
    bit-identical to the batch path, or an explicit 429 under
    backpressure — and shutdown still drains.  Nothing hangs, nothing
    crashes, and the refused count is recorded as degradation.
    """
    from repro.api import Session
    from repro.serve import ServeConfig, ServeDaemon

    degradation = DegradationReport()
    session = Session(ir, world.topology, index=None, use_cache=False)
    entry = entries[0]
    expected = str(
        session.warm().verify_route(str(entry.prefix), entry.as_path, collector="serve")
    )
    body = json.dumps({"prefix": str(entry.prefix), "as_path": list(entry.as_path)})
    daemon = ServeDaemon(
        session,
        ServeConfig(http_port=0, queue_size=4, batch_max=2, default_deadline=30.0),
    )
    handle = daemon.start_in_thread()

    def post_verify() -> tuple[int, dict]:
        connection = http.client.HTTPConnection(
            "127.0.0.1", handle.http_port, timeout=30
        )
        try:
            connection.request(
                "POST", "/verify", body=body,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            return response.status, json.loads(response.read())
        finally:
            connection.close()

    try:
        status, payload = post_verify()
        check(
            ChaosCheck(
                "serve/http-bit-identity",
                status == 200 and payload.get("text") == expected,
                "daemon verdict matches the batch rendering",
            )
        )
        # Make each batch slow so the bounded queue actually fills.
        daemon.service.fault_hook = lambda queries: time.sleep(0.05)
        with ThreadPoolExecutor(max_workers=32) as pool:
            outcomes = [f.result() for f in [pool.submit(post_verify) for _ in range(32)]]
        daemon.service.fault_hook = None
        statuses = sorted({status for status, _ in outcomes})
        busy = sum(1 for status, _ in outcomes if status == 429)
        served = sum(1 for status, _ in outcomes if status == 200)
        if busy:
            degradation.record("serve", "request-busy", "flood", busy)
        check(
            ChaosCheck(
                "serve/flood-backpressure",
                set(statuses) <= {200, 429} and busy >= 1 and served >= 1,
                f"{served} served, {busy} refused busy, statuses={statuses}",
            )
        )
    finally:
        handle.stop()
    try:
        post_verify()
        stopped = False
    except OSError:
        stopped = True
    check(
        ChaosCheck(
            "serve/graceful-stop",
            stopped,
            "drained on stop; later connections refused",
        )
    )
    return degradation


def _serve_supervisor_layer(check, ir, world, entries) -> DegradationReport:
    """Crash and wedge the serve worker pool mid-flood; assert self-healing.

    The contract: SIGKILLing one worker costs only its in-flight batch
    (retried on another worker — every client still gets a verdict
    bit-identical to the batch path), the supervisor respawns a
    replacement and the restart is visible in the metrics and the
    degradation report; a SIGSTOPped worker is detected by heartbeat and
    replaced without operator intervention.
    """
    from repro.api import Session
    from repro.obs import MetricsRegistry
    from repro.serve import ServeConfig, ServeDaemon

    degradation = DegradationReport()
    # A private registry so the restart counter is visible at /metrics.
    session = Session(
        ir, world.topology, index=None, use_cache=False, registry=MetricsRegistry()
    )
    entry = entries[0]
    expected = str(
        session.warm().verify_route(str(entry.prefix), entry.as_path, collector="serve")
    )
    body = json.dumps({"prefix": str(entry.prefix), "as_path": list(entry.as_path)})
    daemon = ServeDaemon(
        session,
        ServeConfig(
            http_port=0,
            workers=2,
            queue_size=128,
            batch_max=4,
            default_deadline=30.0,
            hang_timeout=3.0,
            heartbeat_interval=0.1,
            heartbeat_timeout=1.0,
            shed_target=0.0,  # admission stays open: every flood request answers
        ),
    )
    handle = daemon.start_in_thread()
    service = daemon.service
    supervisor = service.supervisor

    def http_get(path: str) -> tuple[int, str]:
        connection = http.client.HTTPConnection(
            "127.0.0.1", handle.http_port, timeout=30
        )
        try:
            connection.request("GET", path)
            response = connection.getresponse()
            return response.status, response.read().decode()
        finally:
            connection.close()

    def post_verify() -> tuple[int, dict]:
        connection = http.client.HTTPConnection(
            "127.0.0.1", handle.http_port, timeout=30
        )
        try:
            connection.request(
                "POST", "/verify", body=body,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            return response.status, json.loads(response.read())
        finally:
            connection.close()

    try:
        status, payload = post_verify()
        check(
            ChaosCheck(
                "serve-pool/bit-identity",
                status == 200 and payload.get("text") == expected,
                "pool verdict matches the batch rendering",
            )
        )

        # SIGKILL one worker mid-flood.  The fault hook slows each batch
        # so the flood is still in flight when the kill lands and some
        # batch actually dies with its worker.
        victim = supervisor.worker_pids()[0]
        service.fault_hook = lambda queries: time.sleep(0.02)
        try:
            with ThreadPoolExecutor(max_workers=16) as pool:
                futures = [pool.submit(post_verify) for _ in range(48)]
                time.sleep(0.1)
                KillServeWorker()(victim)
                outcomes = [future.result() for future in futures]
        finally:
            service.fault_hook = None
        served = sum(1 for status, _ in outcomes if status == 200)
        identical = all(
            payload.get("text") == expected
            for status, payload in outcomes
            if status == 200
        )
        check(
            ChaosCheck(
                "serve-pool/kill-mid-flood-no-request-lost",
                served == len(outcomes) and identical,
                f"{served}/{len(outcomes)} served bit-identically, worker SIGKILLed",
            )
        )

        deadline = time.monotonic() + 15
        while (
            time.monotonic() < deadline
            and supervisor.state()["restarts_total"] < 1
        ):
            time.sleep(0.05)
        state = supervisor.state()
        kinds = service.degradation.by_kind()
        crashes = kinds.get("serve/worker-crashed", 0) + kinds.get(
            "serve/worker-hung", 0
        )
        check(
            ChaosCheck(
                "serve-pool/restart-recorded",
                state["restarts_total"] >= 1 and crashes >= 1,
                f"restarts={state['restarts_total']}, "
                f"degradation={dict(sorted(kinds.items()))}",
            )
        )
        _, metrics_text = http_get("/metrics")
        check(
            ChaosCheck(
                "serve-pool/restart-in-metrics",
                "serve_worker_restarts_total 1" in metrics_text
                or "serve_worker_restarts_total 2" in metrics_text,
                "restart counter exported at /metrics",
            )
        )

        # SIGSTOP a worker: the idle heartbeat must notice the silence
        # and replace it within interval + timeout (plus respawn time).
        victim = supervisor.worker_pids()[0]
        HungWorker()(victim)
        deadline = time.monotonic() + 15
        replaced = False
        while time.monotonic() < deadline:
            pids = supervisor.worker_pids()
            if victim not in pids and len(pids) == daemon.config.workers:
                replaced = True
                break
            time.sleep(0.05)
        check(
            ChaosCheck(
                "serve-pool/hung-worker-replaced",
                replaced,
                "SIGSTOPped worker detected by heartbeat and respawned",
            )
        )

        status, health_text = http_get("/healthz")
        health = json.loads(health_text)
        block = health.get("supervisor", {})
        check(
            ChaosCheck(
                "serve-pool/healthz-supervisor-state",
                status == 200
                and block.get("live") == daemon.config.workers
                and not block.get("degraded", True),
                f"supervisor block: {block}",
            )
        )
        degradation.merge(service.degradation)
    finally:
        handle.stop()
    return degradation
