"""RPSLyzer reproduction: parse, characterize, and verify RPSL policies.

The supported entry point is the :mod:`repro.api` facade, re-exported
here; it mirrors the paper's pipeline stages:

* :func:`synthesize` — generate an offline world (IRR dumps + topology);
* :func:`parse_dumps` — parse a directory of dumps into one merged
  :class:`Ir` plus its parse issues;
* :func:`verify_table` — verify BGP routes, serial or multi-process, into
  :class:`VerificationStats`;
* :func:`characterize` — the Section 4 characterization.

Observability for all of it lives in :mod:`repro.obs` (metrics registry,
phase spans, run manifests); lower-level pieces (:class:`Verifier`,
:class:`Registry`, the RPSL parsers) remain importable for tooling but are
implementation detail.

Quickstart::

    from repro import open_session
    from repro.bgp.table import parse_table_file

    with open_session("dumps/", as_rel="as-rel.txt") as session:
        stats = session.verify_table(parse_table_file("table.txt"), processes=4)
        report = session.verify_route("192.0.2.0/24", [64500, 64496])
    print(stats.summary())
"""

from repro.api import (
    LoadResult,
    Session,
    SessionClosedError,
    characterize,
    make_verifier,
    open_session,
    parse_dumps,
    parse_registry,
    synthesize,
    verify_table,
)
from repro.bgp.topology import AsRelationships
from repro.core.status import SpecialCase, VerifyStatus
from repro.core.verify import Verifier, VerifyOptions
from repro.ir.model import Ir
from repro.irr.dump import parse_dump_file, parse_dump_text
from repro.irr.registry import Registry, parse_registry_dir
from repro.net.prefix import Prefix
from repro.stats.verification import VerificationStats

__version__ = "1.8.0"

__all__ = [
    # the supported facade
    "LoadResult",
    "Session",
    "SessionClosedError",
    "characterize",
    "make_verifier",
    "open_session",
    "parse_dumps",
    "parse_registry",
    "synthesize",
    "verify_table",
    "VerificationStats",
    "VerifyOptions",
    # core model and lower-level pieces
    "AsRelationships",
    "Ir",
    "Prefix",
    "Registry",
    "SpecialCase",
    "Verifier",
    "VerifyStatus",
    "__version__",
    "parse_dump_file",
    "parse_dump_text",
    "parse_registry_dir",
]
