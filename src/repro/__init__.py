"""RPSLyzer reproduction: parse, characterize, and verify RPSL policies.

Public API tour:

* parse IRR dumps — :func:`repro.irr.parse_dump_text` /
  :func:`repro.irr.parse_registry_dir`, merged via
  :class:`repro.irr.Registry`;
* the intermediate representation — :class:`repro.ir.Ir`, JSON round-trip
  in :mod:`repro.ir.json_io`;
* verify BGP routes — :class:`repro.core.Verifier` over an IR plus an
  :class:`repro.bgp.AsRelationships` database;
* characterize — :mod:`repro.stats`;
* generate an offline world — :func:`repro.irr.synth.build_world`.

Quickstart::

    from repro import Verifier, parse_dump_text
    from repro.bgp.topology import AsRelationships

    ir, errors = parse_dump_text(open("ripe.db").read(), "RIPE")
    verifier = Verifier(ir, AsRelationships.load("as-rel.txt"))
    report = verifier.verify_route("192.0.2.0/24", (3356, 1299, 64500))
    print(report)
"""

from repro.bgp.topology import AsRelationships
from repro.core.verify import Verifier, VerifyOptions
from repro.core.status import SpecialCase, VerifyStatus
from repro.ir.model import Ir
from repro.irr.dump import parse_dump_file, parse_dump_text
from repro.irr.registry import Registry, parse_registry_dir
from repro.net.prefix import Prefix

__version__ = "1.0.0"

__all__ = [
    "AsRelationships",
    "Ir",
    "Prefix",
    "Registry",
    "SpecialCase",
    "Verifier",
    "VerifyOptions",
    "VerifyStatus",
    "__version__",
    "parse_dump_file",
    "parse_dump_text",
    "parse_registry_dir",
]
