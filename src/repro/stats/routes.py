"""Route-object multiplicity statistics (the Section 4 "route objects
require management" analysis).

The paper counts, across all IRRs *before* priority merging: total route
objects, unique prefix-origin pairs, unique prefixes, prefixes with
multiple route objects, prefixes whose objects disagree on the origin, and
prefixes registered by multiple operators (maintainers).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.model import Ir
from repro.net.prefix import Prefix

__all__ = ["RouteObjectStats", "route_object_stats", "multi_origin_prefixes"]


@dataclass(frozen=True, slots=True)
class RouteObjectStats:
    """All counters of the Section 4 route-object paragraph."""

    total_objects: int
    unique_prefix_origin_pairs: int
    unique_prefixes: int
    prefixes_with_multiple_objects: int
    prefixes_with_multiple_origins: int
    prefixes_with_multiple_maintainers: int

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view for report printing."""
        return {
            "route objects": self.total_objects,
            "unique prefix-origin pairs": self.unique_prefix_origin_pairs,
            "unique prefixes": self.unique_prefixes,
            "prefixes with multiple route objects": self.prefixes_with_multiple_objects,
            "prefixes with multiple origins": self.prefixes_with_multiple_origins,
            "prefixes with multiple maintainers": self.prefixes_with_multiple_maintainers,
        }


def route_object_stats(ir: Ir) -> RouteObjectStats:
    """Compute the multiplicity statistics over every route registration."""
    pairs: set[tuple[Prefix, int]] = set()
    objects_per_prefix: dict[Prefix, int] = {}
    origins_per_prefix: dict[Prefix, set[int]] = {}
    maintainers_per_prefix: dict[Prefix, set[str]] = {}
    for route in ir.route_objects:
        prefix = route.prefix
        pairs.add((prefix, route.origin))
        objects_per_prefix[prefix] = objects_per_prefix.get(prefix, 0) + 1
        origins_per_prefix.setdefault(prefix, set()).add(route.origin)
        maintainer = ",".join(sorted(route.mnt_by)) or f"?{route.source}"
        maintainers_per_prefix.setdefault(prefix, set()).add(maintainer)
    return RouteObjectStats(
        total_objects=len(ir.route_objects),
        unique_prefix_origin_pairs=len(pairs),
        unique_prefixes=len(objects_per_prefix),
        prefixes_with_multiple_objects=sum(
            1 for count in objects_per_prefix.values() if count > 1
        ),
        prefixes_with_multiple_origins=sum(
            1 for origins in origins_per_prefix.values() if len(origins) > 1
        ),
        prefixes_with_multiple_maintainers=sum(
            1 for names in maintainers_per_prefix.values() if len(names) > 1
        ),
    )


def multi_origin_prefixes(ir: Ir) -> dict[Prefix, set[int]]:
    """Prefixes whose route objects name more than one origin AS."""
    origins_per_prefix: dict[Prefix, set[int]] = {}
    for route in ir.route_objects:
        origins_per_prefix.setdefault(route.prefix, set()).add(route.origin)
    return {
        prefix: origins
        for prefix, origins in origins_per_prefix.items()
        if len(origins) > 1
    }
