"""Section 4 characterization: how ASes use the RPSL.

Implements the analyses behind Figure 1 (rules-per-aut-num CCDF, all rules
vs BGPq4-compatible rules), Table 2 (objects defined vs referenced, split
by where the reference appears), the peering/filter simplicity numbers
quoted in the text, and the RPSL error census.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.ir.model import Ir
from repro.rpsl.errors import ErrorCollector, ErrorKind
from repro.rpsl.filter import (
    Filter,
    FilterAnd,
    FilterAny,
    FilterAsn,
    FilterAsPathRegex,
    FilterAsSet,
    FilterCommunity,
    FilterFltrSetRef,
    FilterNot,
    FilterOr,
    FilterPeerAs,
    FilterPrefixSet,
    FilterRouteSet,
)
from repro.rpsl.peering import PeerAny, PeerAsn, PeerAsSet, PeeringSetRef
from repro.rpsl.walk import (
    iter_as_expr_nodes,
    iter_filter_nodes,
    iter_peerings,
    iter_policy_factors,
)
from repro.stats.ccdf import ccdf_points

__all__ = [
    "rules_per_aut_num",
    "rules_per_group",
    "rules_ccdf",
    "peering_simplicity",
    "filter_kind_census",
    "action_census",
    "cross_irr_overlap",
    "ReferenceCensus",
    "reference_census",
    "error_census",
]


def rules_per_aut_num(ir: Ir, bgpq4_compatible_only: bool = False) -> dict[int, int]:
    """Rule count per aut-num — the Figure 1 distribution.

    With ``bgpq4_compatible_only`` only rules a BGPq4-class tool could
    resolve are counted (the second curve of Figure 1).
    """
    if not bgpq4_compatible_only:
        return {asn: aut_num.rule_count for asn, aut_num in ir.aut_nums.items()}
    from repro.baseline.bgpq4 import is_rule_compatible

    return {
        asn: sum(
            1
            for rule in (*aut_num.imports, *aut_num.exports)
            if is_rule_compatible(rule)
        )
        for asn, aut_num in ir.aut_nums.items()
    }


def rules_ccdf(ir: Ir, bgpq4_compatible_only: bool = False) -> list[tuple[int, float]]:
    """The Figure 1 CCDF: ``(rules, fraction of aut-nums with ≥ rules)``."""
    return ccdf_points(rules_per_aut_num(ir, bgpq4_compatible_only).values())


def rules_per_group(ir: Ir, group: set[int]) -> dict[int, int]:
    """Rule counts for a designated AS group — Figure 1's annotations.

    The paper marks Tier-1s (red crosses) and large CDNs (green arrows) on
    the CCDF; pass the group's ASNs (e.g. ``relationships.tier1``) and plot
    the returned counts as markers.  ASes absent from the IRRs count as 0.
    """
    counts = rules_per_aut_num(ir)
    return {asn: counts.get(asn, 0) for asn in sorted(group)}


def peering_simplicity(ir: Ir) -> dict[str, int]:
    """Classify every peering definition (the "98.4% simple" number).

    Categories: ``single-asn``, ``any``, ``as-set``, ``peering-set``, and
    ``complex`` (anything with operators or router expressions).
    """
    census: Counter = Counter()
    for aut_num in ir.aut_nums.values():
        for rule in (*aut_num.imports, *aut_num.exports):
            for peering in iter_peerings(rule.expr):
                expr = peering.as_expr
                if peering.remote_router or peering.local_router:
                    census["complex"] += 1
                elif isinstance(expr, PeerAsn):
                    census["single-asn"] += 1
                elif isinstance(expr, PeerAny):
                    census["any"] += 1
                elif isinstance(expr, PeerAsSet):
                    census["as-set"] += 1
                elif isinstance(expr, PeeringSetRef):
                    census["peering-set"] += 1
                else:
                    census["complex"] += 1
    return dict(census)


def _filter_kind(node: Filter) -> str:
    if isinstance(node, FilterAsSet):
        return "as-set"
    if isinstance(node, FilterAsn):
        return "asn"
    if isinstance(node, FilterAny):
        return "any"
    if isinstance(node, FilterPeerAs):
        return "peeras"
    if isinstance(node, FilterRouteSet):
        return "route-set"
    if isinstance(node, FilterPrefixSet):
        return "prefix-set"
    if isinstance(node, FilterAsPathRegex):
        return "as-path-regex"
    if isinstance(node, FilterFltrSetRef):
        return "filter-set"
    if isinstance(node, FilterCommunity):
        return "community"
    if isinstance(node, (FilterAnd, FilterOr, FilterNot)):
        return "composite"
    return "other"


def filter_kind_census(ir: Ir) -> dict[str, int]:
    """What rules use as their *filter* (the "most filters are an as-set
    (43.4%) or ASN (24.1%)" analysis).  Each factor's filter counts once,
    classified by its top-level shape."""
    census: Counter = Counter()
    for aut_num in ir.aut_nums.values():
        for rule in (*aut_num.imports, *aut_num.exports):
            for factor in iter_policy_factors(rule.expr):
                census[_filter_kind(factor.filter)] += 1
    return dict(census)


def action_census(ir: Ir) -> dict[str, int]:
    """What rule *actions* operators use (``pref =``, ``community.append``…).

    Keys are ``attribute<op>`` for assignments (``pref=``, ``community.=``)
    and ``attribute.method()`` for calls (``aspath.prepend()``); the
    ``rules-with-actions`` pseudo-key counts rules carrying any action.
    """
    census: Counter = Counter()
    for aut_num in ir.aut_nums.values():
        for rule in (*aut_num.imports, *aut_num.exports):
            rule_has_actions = False
            for factor in iter_policy_factors(rule.expr):
                for peering_action in factor.peerings:
                    for action in peering_action.actions:
                        rule_has_actions = True
                        if action.method is not None:
                            census[f"{action.attribute}.{action.method}()"] += 1
                        else:
                            census[f"{action.attribute}{action.operator}"] += 1
            if rule_has_actions:
                census["rules-with-actions"] += 1
    return dict(census)


@dataclass(slots=True)
class ReferenceCensus:
    """Table 2: per class, what is defined and what rules reference.

    ``referenced_*`` sets contain only names/ASNs that are *also defined*
    (the paper reports reference rates over defined objects); the
    ``dangling_*`` sets hold references to undefined objects — the raw
    material of the UNRECORDED verification status.
    """

    defined: dict[str, int] = field(default_factory=dict)
    referenced_overall: dict[str, set] = field(default_factory=dict)
    referenced_peering: dict[str, set] = field(default_factory=dict)
    referenced_filter: dict[str, set] = field(default_factory=dict)
    dangling: dict[str, set] = field(default_factory=dict)

    def table(self) -> list[tuple[str, int, int, int, int]]:
        """Rows of ``(class, defined, overall, in-peering, in-filter)``."""
        rows = []
        for cls in ("aut-num", "as-set", "route-set", "peering-set", "filter-set"):
            rows.append(
                (
                    cls,
                    self.defined.get(cls, 0),
                    len(self.referenced_overall.get(cls, ())),
                    len(self.referenced_peering.get(cls, ())),
                    len(self.referenced_filter.get(cls, ())),
                )
            )
        return rows


def reference_census(ir: Ir) -> ReferenceCensus:
    """Compute Table 2 from a merged IR."""
    census = ReferenceCensus()
    census.defined = {
        "aut-num": len(ir.aut_nums),
        "as-set": len(ir.as_sets),
        "route-set": len(ir.route_sets),
        "peering-set": len(ir.peering_sets),
        "filter-set": len(ir.filter_sets),
    }
    for cls in census.defined:
        census.referenced_overall[cls] = set()
        census.referenced_peering[cls] = set()
        census.referenced_filter[cls] = set()
        census.dangling[cls] = set()

    def note(cls: str, key, where: dict[str, set]) -> None:
        defined = _is_defined(ir, cls, key)
        if defined:
            where[cls].add(key)
            census.referenced_overall[cls].add(key)
        else:
            census.dangling[cls].add(key)

    for aut_num in ir.aut_nums.values():
        for rule in (*aut_num.imports, *aut_num.exports):
            for peering in iter_peerings(rule.expr):
                for node in iter_as_expr_nodes(peering.as_expr):
                    if isinstance(node, PeerAsn):
                        note("aut-num", node.asn, census.referenced_peering)
                    elif isinstance(node, PeerAsSet):
                        note("as-set", node.name, census.referenced_peering)
                    elif isinstance(node, PeeringSetRef):
                        note("peering-set", node.name, census.referenced_peering)
            for factor in iter_policy_factors(rule.expr):
                for node in iter_filter_nodes(factor.filter):
                    if isinstance(node, FilterAsn):
                        note("aut-num", node.asn, census.referenced_filter)
                    elif isinstance(node, FilterAsSet) and not node.any_member:
                        note("as-set", node.name, census.referenced_filter)
                    elif isinstance(node, FilterRouteSet) and not node.any_member:
                        note("route-set", node.name, census.referenced_filter)
                    elif isinstance(node, FilterFltrSetRef):
                        note("filter-set", node.name, census.referenced_filter)
                    elif isinstance(node, FilterAsPathRegex):
                        from repro.rpsl.aspath import ReAsn, ReAsSet

                        stack = [node.regex]
                        while stack:
                            current = stack.pop()
                            if isinstance(current, ReAsn):
                                note("aut-num", current.asn, census.referenced_filter)
                            elif isinstance(current, ReAsSet):
                                note("as-set", current.name, census.referenced_filter)
                            else:
                                for attr in ("parts", "options", "items"):
                                    children = getattr(current, attr, None)
                                    if children:
                                        stack.extend(children)
                                inner = getattr(current, "inner", None)
                                if inner is not None:
                                    stack.append(inner)
    return census


def _is_defined(ir: Ir, cls: str, key) -> bool:
    if cls == "aut-num":
        return key in ir.aut_nums
    if cls == "as-set":
        return key in ir.as_sets
    if cls == "route-set":
        return key in ir.route_sets
    if cls == "peering-set":
        return key in ir.peering_sets
    if cls == "filter-set":
        return key in ir.filter_sets
    return False


def cross_irr_overlap(irs: dict[str, Ir]) -> dict[str, dict[str, int]]:
    """How many objects are defined in more than one IRR, per class.

    The motivation for the Table 1 priority merge: registries overlap
    (operators mirror objects into RADB, registrars proxy-register).
    Returns, per class, ``{"defined": distinct keys, "overlapping": keys
    in ≥2 IRRs, "max_copies": the most registries one key appears in}``.
    """
    keyed: dict[str, Counter] = {
        "aut-num": Counter(),
        "as-set": Counter(),
        "route-set": Counter(),
        "route": Counter(),
    }
    for ir in irs.values():
        for asn in ir.aut_nums:
            keyed["aut-num"][asn] += 1
        for name in ir.as_sets:
            keyed["as-set"][name] += 1
        for name in ir.route_sets:
            keyed["route-set"][name] += 1
        for route in ir.route_objects:
            keyed["route"][(route.prefix, route.origin)] += 1
    return {
        cls: {
            "defined": len(counts),
            "overlapping": sum(1 for copies in counts.values() if copies > 1),
            "max_copies": max(counts.values(), default=0),
        }
        for cls, counts in keyed.items()
    }


def error_census(errors: ErrorCollector) -> dict[str, int]:
    """The Section 4 error numbers: syntax errors and invalid set names."""
    by_kind = errors.count_by_kind()
    return {
        "syntax": by_kind.get(ErrorKind.SYNTAX, 0),
        "invalid-as-set-name": by_kind.get(ErrorKind.INVALID_AS_SET_NAME, 0),
        "invalid-route-set-name": by_kind.get(ErrorKind.INVALID_ROUTE_SET_NAME, 0),
        "reserved-name": by_kind.get(ErrorKind.RESERVED_NAME, 0),
        "invalid-prefix": by_kind.get(ErrorKind.INVALID_PREFIX, 0),
        "invalid-asn": by_kind.get(ErrorKind.INVALID_ASN, 0),
        "total": len(errors),
    }
