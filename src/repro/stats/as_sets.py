"""As-set structure statistics (the Section 4 "opaqueness of as-sets"
analysis): empty sets, singletons, reserved-keyword members, giant sets,
recursion, loops, and nesting depth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.query import QueryEngine
from repro.ir.model import Ir

__all__ = ["AsSetStats", "as_set_stats"]


@dataclass(frozen=True, slots=True)
class AsSetStats:
    """The counters quoted in Section 4's as-set paragraph."""

    total: int
    empty: int
    single_member: int
    with_any_member: int
    huge: int  # flattened membership above `huge_threshold`
    recursive: int  # contain at least one other as-set
    looping: int  # a cycle is reachable (subset of recursive)
    deep: int  # nesting depth >= `deep_threshold` (subset of recursive)
    huge_threshold: int
    deep_threshold: int

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view for report printing."""
        return {
            "as-sets": self.total,
            "empty": self.empty,
            "single-member": self.single_member,
            "with ANY member": self.with_any_member,
            f">{self.huge_threshold} members": self.huge,
            "recursive": self.recursive,
            "looping": self.looping,
            f"depth >= {self.deep_threshold}": self.deep,
        }


def as_set_stats(
    ir: Ir,
    query: QueryEngine | None = None,
    huge_threshold: int = 10000,
    deep_threshold: int = 5,
) -> AsSetStats:
    """Compute as-set structure statistics over a merged IR.

    "Empty" and "single member" consider *direct* members, as in the
    paper's framing (a single-member set "could be replaced by the member");
    "huge" considers the flattened membership.
    """
    if query is None:
        query = QueryEngine(ir)
    empty = 0
    single = 0
    with_any = 0
    huge = 0
    recursive = 0
    looping = 0
    deep = 0
    for name, as_set in ir.as_sets.items():
        direct = as_set.member_count
        if direct == 0:
            empty += 1
        elif direct == 1 and not as_set.contains_any:
            single += 1
        if as_set.contains_any:
            with_any += 1
        resolution = query.flatten_as_set(name)
        if len(resolution.members) > huge_threshold:
            huge += 1
        if as_set.members_set:
            recursive += 1
            if resolution.has_loop:
                looping += 1
            if resolution.depth >= deep_threshold:
                deep += 1
    return AsSetStats(
        total=len(ir.as_sets),
        empty=empty,
        single_member=single,
        with_any_member=with_any,
        huge=huge,
        recursive=recursive,
        looping=looping,
        deep=deep,
        huge_threshold=huge_threshold,
        deep_threshold=deep_threshold,
    )
