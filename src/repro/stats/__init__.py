"""Characterization and verification statistics (Sections 4 and 5)."""

from repro.stats.as_sets import AsSetStats, as_set_stats
from repro.stats.routes import RouteObjectStats, route_object_stats
from repro.stats.usage import (
    ReferenceCensus,
    error_census,
    filter_kind_census,
    peering_simplicity,
    reference_census,
    rules_ccdf,
    rules_per_aut_num,
)
from repro.stats.verification import VerificationStats

__all__ = [
    "AsSetStats",
    "ReferenceCensus",
    "RouteObjectStats",
    "VerificationStats",
    "as_set_stats",
    "error_census",
    "filter_kind_census",
    "peering_simplicity",
    "reference_census",
    "route_object_stats",
    "rules_ccdf",
    "rules_per_aut_num",
]
