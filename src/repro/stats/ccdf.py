"""Tiny helpers for complementary-CDF style summaries (Figure 1)."""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

__all__ = ["ccdf_points", "fraction_at_least"]


def ccdf_points(values: Iterable[int]) -> list[tuple[int, float]]:
    """``(x, P[X ≥ x])`` for every distinct value x, ascending.

    This is the curve Figure 1 plots: the fraction of aut-nums with at
    least x rules.
    """
    counts = Counter(values)
    total = sum(counts.values())
    if total == 0:
        return []
    points: list[tuple[int, float]] = []
    remaining = total
    for value in sorted(counts):
        points.append((value, remaining / total))
        remaining -= counts[value]
    return points


def fraction_at_least(values: Sequence[int], threshold: int) -> float:
    """The fraction of values ≥ threshold (a single CCDF sample)."""
    if not values:
        return 0.0
    return sum(1 for value in values if value >= threshold) / len(values)
