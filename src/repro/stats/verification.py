"""Aggregation of verification results at three granularities.

The paper reports verification statuses per AS (Figure 2), per AS pair
(Figure 3), and per route (Figure 4), plus breakdowns of unrecorded
reasons (Figure 5) and special cases (Figure 6).  This module is a
streaming aggregator: feed it every :class:`~repro.core.report.RouteReport`
and read the figure data afterwards — it never stores per-route state, so
memory stays flat over hundreds of millions of hops.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.degradation import DegradationReport
from repro.core.report import RouteReport
from repro.core.status import SpecialCase, UnrecordedReason, VerifyStatus

__all__ = ["VerificationStats", "StatusMix"]

_STATUSES = tuple(VerifyStatus)


@dataclass(slots=True)
class StatusMix:
    """Distribution of statuses over some grouping key."""

    counts: Counter = field(default_factory=Counter)

    def add(self, status: VerifyStatus) -> None:
        """Count one hop check with the given status."""
        self.counts[status] += 1

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def fractions(self) -> dict[VerifyStatus, float]:
        """Per-status fractions — one stacked bar of Figures 2–4."""
        total = self.total
        if total == 0:
            return {}
        return {status: count / total for status, count in self.counts.items()}

    def single_status(self) -> VerifyStatus | None:
        """The only status present, or None if mixed (or empty)."""
        if len(self.counts) == 1:
            return next(iter(self.counts))
        return None


class VerificationStats:
    """Streaming aggregation of route reports into the paper's figures."""

    def __init__(self) -> None:
        self.routes_total = 0
        self.routes_ignored: Counter = Counter()
        self.hop_totals: Counter = Counter()  # status -> hops
        self.per_as: dict[int, StatusMix] = {}
        self.per_pair: dict[tuple[int, int, str], StatusMix] = {}
        # per-route summaries (no per-route storage: fold immediately)
        self.route_single_status: Counter = Counter()  # status -> routes
        self.route_status_count_hist: Counter = Counter()  # #distinct statuses -> routes
        self.first_hop_statuses: Counter = Counter()
        # breakdowns
        self.unrec_reasons_per_as: dict[int, Counter] = {}
        self.special_per_as: dict[int, Counter] = {}
        # unverified-peering analysis ("most unverified routes traverse
        # undeclared peerings")
        self.unverified_hops = 0
        self.unverified_peering_only = 0
        # how the run degraded (requeued chunks, serial fallbacks, ...);
        # empty on a clean run
        self.degradation = DegradationReport()

    # -- ingestion ---------------------------------------------------------

    def add_report(self, report: RouteReport) -> None:
        """Fold one route report into every aggregate."""
        self.routes_total += 1
        if report.ignored is not None:
            self.routes_ignored[report.ignored] += 1
            return
        seen_statuses: set[VerifyStatus] = set()
        for index, hop in enumerate(report.hops):
            status = hop.status
            seen_statuses.add(status)
            self.hop_totals[status] += 1
            subject = hop.subject_asn
            self.per_as.setdefault(subject, StatusMix()).add(status)
            pair_key = (hop.from_asn, hop.to_asn, hop.direction)
            self.per_pair.setdefault(pair_key, StatusMix()).add(status)
            if index < 2:
                # hops[0]/hops[1] are the origin-side export and import —
                # the "first hop" the paper examines for leak prevention.
                self.first_hop_statuses[status] += 1
            if status is VerifyStatus.UNRECORDED:
                reason = hop.unrecorded_reason
                if reason is not None:
                    self.unrec_reasons_per_as.setdefault(subject, Counter())[reason] += 1
            elif status in (VerifyStatus.RELAXED, VerifyStatus.SAFELISTED):
                case = hop.special_case
                if case is not None:
                    self.special_per_as.setdefault(subject, Counter())[case] += 1
            elif status is VerifyStatus.UNVERIFIED:
                self.unverified_hops += 1
                if not hop.peer_matched:
                    # No rule's peering covered the remote AS: the
                    # relationship itself is undeclared (paper: 98.98% of
                    # unverified cases).
                    self.unverified_peering_only += 1
        self.route_status_count_hist[len(seen_statuses)] += 1
        if len(seen_statuses) == 1:
            self.route_single_status[next(iter(seen_statuses))] += 1

    def merge(self, other: "VerificationStats") -> None:
        """Fold another aggregator into this one (parallel verification)."""
        self.routes_total += other.routes_total
        self.routes_ignored.update(other.routes_ignored)
        self.hop_totals.update(other.hop_totals)
        for asn, mix in other.per_as.items():
            self.per_as.setdefault(asn, StatusMix()).counts.update(mix.counts)
        for key, mix in other.per_pair.items():
            self.per_pair.setdefault(key, StatusMix()).counts.update(mix.counts)
        self.route_single_status.update(other.route_single_status)
        self.route_status_count_hist.update(other.route_status_count_hist)
        self.first_hop_statuses.update(other.first_hop_statuses)
        for asn, reasons in other.unrec_reasons_per_as.items():
            self.unrec_reasons_per_as.setdefault(asn, Counter()).update(reasons)
        for asn, cases in other.special_per_as.items():
            self.special_per_as.setdefault(asn, Counter()).update(cases)
        self.unverified_hops += other.unverified_hops
        self.unverified_peering_only += other.unverified_peering_only
        self.degradation.merge(other.degradation)

    # -- Figure 2: per AS -----------------------------------------------

    def ases_with_single_status(self) -> dict[VerifyStatus, int]:
        """ASes whose every import/export got the same status."""
        result: Counter = Counter()
        for mix in self.per_as.values():
            single = mix.single_status()
            if single is not None:
                result[single] += 1
        return dict(result)

    def as_status_fractions(self) -> dict[int, dict[VerifyStatus, float]]:
        """Per-AS status fractions — the stacked bars of Figure 2."""
        return {asn: mix.fractions() for asn, mix in self.per_as.items()}

    # -- Figure 3: per AS pair --------------------------------------------

    def pairs_with_single_status(self, direction: str) -> tuple[int, int]:
        """``(single-status pairs, all pairs)`` for one direction."""
        total = 0
        single = 0
        for (_, _, pair_direction), mix in self.per_pair.items():
            if pair_direction != direction:
                continue
            total += 1
            if mix.single_status() is not None:
                single += 1
        return single, total

    def pairs_with_status(self, status: VerifyStatus) -> int:
        """AS pairs (direction-collapsed) with ≥1 hop of the status."""
        pairs: set[tuple[int, int]] = set()
        for (from_asn, to_asn, _), mix in self.per_pair.items():
            if mix.counts.get(status):
                pairs.add((from_asn, to_asn))
        return len(pairs)

    def total_pairs(self) -> int:
        """Distinct AS pairs observed (direction-collapsed)."""
        return len({(f, t) for (f, t, _) in self.per_pair})

    # -- Figure 4: per route ------------------------------------------------

    def routes_verified(self) -> int:
        """Routes counted (ignored ones excluded)."""
        return self.routes_total - sum(self.routes_ignored.values())

    def single_status_route_fractions(self) -> dict[VerifyStatus, float]:
        """Fraction of routes whose hops all share one status (Figure 4)."""
        total = self.routes_verified()
        if total == 0:
            return {}
        return {
            status: count / total for status, count in self.route_single_status.items()
        }

    # -- Figures 5 and 6: breakdowns ----------------------------------------

    def unrecorded_breakdown(self) -> dict[UnrecordedReason, int]:
        """ASes per unrecorded sub-reason (an AS may appear in several)."""
        result: Counter = Counter()
        for reasons in self.unrec_reasons_per_as.values():
            for reason in reasons:
                result[reason] += 1
        return dict(result)

    def special_breakdown(self) -> dict[SpecialCase, int]:
        """ASes per special case (an AS may appear in several)."""
        result: Counter = Counter()
        for cases in self.special_per_as.values():
            for case in cases:
                result[case] += 1
        return dict(result)

    def ases_with_special_cases(self) -> int:
        """ASes with at least one relaxed or safelisted import/export."""
        return len(self.special_per_as)

    # -- headline summary -----------------------------------------------------

    def summary(self) -> dict[str, object]:
        """The headline numbers of Section 5.2 in one dict."""
        hop_total = sum(self.hop_totals.values()) or 1
        routes = self.routes_verified()
        import_single, import_total = self.pairs_with_single_status("import")
        export_single, export_total = self.pairs_with_single_status("export")
        return {
            "routes": self.routes_verified(),
            "routes_ignored": dict(self.routes_ignored),
            "hops": sum(self.hop_totals.values()),
            "hop_fractions": {
                status.label: self.hop_totals.get(status, 0) / hop_total
                for status in _STATUSES
            },
            "ases": len(self.per_as),
            "ases_single_status": sum(self.ases_with_single_status().values()),
            "pairs": self.total_pairs(),
            "import_pairs_single_status_fraction": (
                import_single / import_total if import_total else 0.0
            ),
            "export_pairs_single_status_fraction": (
                export_single / export_total if export_total else 0.0
            ),
            # one division, not a sum of per-status floats: float addition
            # is order-sensitive and merge order differs between serial and
            # parallel runs, which must produce bit-identical summaries
            "routes_single_status_fraction": (
                sum(self.route_single_status.values()) / routes if routes else 0.0
            ),
            "unverified_hops_peering_only_fraction": (
                self.unverified_peering_only / self.unverified_hops
                if self.unverified_hops
                else 0.0
            ),
            "ases_with_special_cases": self.ases_with_special_cases(),
            "degradation": self.degradation.as_dict(),
        }
