"""Exporting figure data as CSV for external plotting.

Each function returns the rows behind one paper figure as a list of dicts
(one per point/bar) and can write them as CSV — the hand-off format for
gnuplot/matplotlib/R, mirroring how measurement papers archive their
figure data.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import IO

from repro.core.status import SpecialCase, UnrecordedReason, VerifyStatus
from repro.ir.model import Ir
from repro.stats.verification import VerificationStats

__all__ = [
    "fig1_rows",
    "fig2_rows",
    "fig3_rows",
    "fig4_rows",
    "fig5_rows",
    "fig6_rows",
    "write_csv",
]


def fig1_rows(ir: Ir) -> list[dict]:
    """Figure 1: the CCDF points, for all rules and BGPq4-compatible ones.

    Both curves are sampled on the union grid of observed rule counts;
    each sample is the exact ``P[rules ≥ x]``.
    """
    from repro.stats.ccdf import fraction_at_least
    from repro.stats.usage import rules_per_aut_num

    all_counts = list(rules_per_aut_num(ir).values())
    compatible_counts = list(
        rules_per_aut_num(ir, bgpq4_compatible_only=True).values()
    )
    xs = sorted(set(all_counts) | set(compatible_counts))
    return [
        {
            "rules": x,
            "ccdf_all": fraction_at_least(all_counts, x),
            "ccdf_bgpq4": fraction_at_least(compatible_counts, x),
        }
        for x in xs
    ]


def _status_columns(fractions: dict[VerifyStatus, float]) -> dict[str, float]:
    return {status.label: round(fractions.get(status, 0.0), 6) for status in VerifyStatus}


def fig2_rows(stats: VerificationStats) -> list[dict]:
    """Figure 2: one stacked bar per AS, ordered by correctness.

    The x-order matches the paper: sort by (verified-fraction descending,
    then special, then unverified ascending) so colors band together.
    """
    rows = []
    for asn, mix in stats.per_as.items():
        fractions = mix.fractions()
        rows.append({"asn": asn, "hops": mix.total, **_status_columns(fractions)})
    rows.sort(
        key=lambda row: (
            -row["verified"],
            -(row["relaxed"] + row["safelisted"]),
            row["unverified"],
            -row["unrecorded"],
            row["asn"],
        )
    )
    for index, row in enumerate(rows):
        row["x"] = index
    return rows


def fig3_rows(stats: VerificationStats) -> list[dict]:
    """Figure 3: one bar per (AS pair, direction)."""
    rows = []
    for (from_asn, to_asn, direction), mix in stats.per_pair.items():
        rows.append(
            {
                "from_asn": from_asn,
                "to_asn": to_asn,
                "direction": direction,
                "hops": mix.total,
                **_status_columns(mix.fractions()),
            }
        )
    rows.sort(key=lambda row: (-row["verified"], row["unverified"], row["from_asn"]))
    for index, row in enumerate(rows):
        row["x"] = index
    return rows


def fig4_rows(stats: VerificationStats) -> list[dict]:
    """Figure 4 summary: per-status hop fractions plus route-mix histogram."""
    hop_total = sum(stats.hop_totals.values()) or 1
    rows = [
        {
            "series": "hop_fraction",
            "key": status.label,
            "value": stats.hop_totals.get(status, 0) / hop_total,
        }
        for status in VerifyStatus
    ]
    routes = stats.routes_verified() or 1
    for count, n_routes in sorted(stats.route_status_count_hist.items()):
        rows.append(
            {"series": "statuses_per_route", "key": str(count), "value": n_routes / routes}
        )
    for status, n_routes in sorted(stats.route_single_status.items()):
        rows.append(
            {"series": "single_status_route", "key": status.label, "value": n_routes / routes}
        )
    return rows


def fig5_rows(stats: VerificationStats) -> list[dict]:
    """Figure 5: ASes per unrecorded sub-reason."""
    breakdown = stats.unrecorded_breakdown()
    return [
        {"reason": reason.value, "ases": breakdown.get(reason, 0)}
        for reason in UnrecordedReason
    ]


def fig6_rows(stats: VerificationStats) -> list[dict]:
    """Figure 6: ASes per special case."""
    breakdown = stats.special_breakdown()
    return [
        {"case": case.value, "ases": breakdown.get(case, 0)}
        for case in SpecialCase
    ]


def write_csv(rows: list[dict], destination: str | Path | IO[str]) -> None:
    """Write rows as CSV; the header is the union of keys, first-row order."""
    if not rows:
        raise ValueError("no rows to write")
    field_names = list(rows[0])
    for row in rows[1:]:
        for key in row:
            if key not in field_names:
                field_names.append(key)
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="utf-8", newline="") as stream:
            _write(rows, field_names, stream)
    else:
        _write(rows, field_names, destination)


def _write(rows: list[dict], field_names: list[str], stream: IO[str]) -> None:
    writer = csv.DictWriter(stream, fieldnames=field_names, restval="")
    writer.writeheader()
    writer.writerows(rows)
