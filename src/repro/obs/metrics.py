"""The metrics registry: counters, gauges, and fixed-bucket histograms.

Instrumented pipeline code asks the *current* registry (see
:func:`get_registry`) for named instruments and updates them on hot paths.
By default the current registry is :data:`NULL_REGISTRY`, whose instruments
are shared no-op singletons — so an un-instrumented run pays one attribute
lookup per instrumentation site at *setup* time and nothing per event.
Callers that want metrics install a real :class:`MetricsRegistry` with
:func:`set_registry` or the :func:`use_registry` context manager (the CLI's
``--metrics`` flag does exactly this).

Instruments are keyed by ``(name, sorted labels)`` the way Prometheus keys
time series; asking twice for the same key returns the same instrument.
Registries are deliberately not thread-safe on the *update* path: the
pipeline parallelizes by process, and per-worker registries are folded
back into the parent with :meth:`MetricsRegistry.merge_snapshot` (the
same discipline as :class:`~repro.stats.verification.VerificationStats`).
Instrument *creation* is guarded by a lock, because the serve daemon
looks instruments up from both its event loop and its batch executor
threads; callers that mutate instruments from several threads serialize
those updates themselves (the serve core holds one metrics lock around
every serving-path mutation).
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from contextlib import contextmanager
from typing import Iterator

from repro.obs.spans import NULL_SPAN, SpanStore

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "get_registry",
    "set_registry",
    "use_registry",
    "render_prometheus_snapshot",
    "parse_prometheus",
    "cumulative_view",
    "DEFAULT_LATENCY_BUCKETS",
    "PROMETHEUS_CONTENT_TYPE",
]

# The Prometheus text exposition format 0.0.4 content type — what a
# scraper expects from ``GET /metrics`` and ``rpslyzer metrics --format
# prom``.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

LabelItems = tuple[tuple[str, str], ...]

# Upper bounds (seconds) for latency histograms: 1 µs .. ~4 s, doubling.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = tuple(
    1e-6 * 2**i for i in range(23)
)


def _label_items(labels: dict[str, str]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count (events, objects, errors)."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: LabelItems = ()):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def as_dict(self) -> dict:
        return {"name": self.name, "labels": dict(self.labels), "value": self.value}


class Gauge:
    """A point-in-time value (hit rate, queue depth, worker count)."""

    __slots__ = ("name", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, labels: LabelItems = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def as_dict(self) -> dict:
        return {"name": self.name, "labels": dict(self.labels), "value": self.value}


class Histogram:
    """A distribution over fixed bucket upper bounds (Prometheus ``le``).

    ``buckets`` are inclusive upper bounds in increasing order; an implicit
    overflow bucket (``+Inf``) catches everything beyond the last bound.
    ``bucket_counts[i]`` is the *non-cumulative* count of observations with
    ``buckets[i-1] < v <= buckets[i]`` (rendering cumulates them).
    """

    __slots__ = ("name", "labels", "buckets", "bucket_counts", "sum", "count")
    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: LabelItems = (),
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"histogram {name!r} needs increasing bucket bounds")
        self.name = name
        self.labels = labels
        self.buckets = tuple(buckets)
        self.bucket_counts = [0] * (len(buckets) + 1)  # +1 for +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """``(le, cumulative count)`` pairs, ending with ``(inf, count)``."""
        pairs: list[tuple[float, int]] = []
        running = 0
        for bound, bucket_count in zip(self.buckets, self.bucket_counts):
            running += bucket_count
            pairs.append((bound, running))
        pairs.append((float("inf"), self.count))
        return pairs

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "buckets": list(self.buckets),
            "bucket_counts": list(self.bucket_counts),
            "sum": self.sum,
            "count": self.count,
        }


class MetricsRegistry:
    """A live collection of instruments plus the phase-span store."""

    enabled = True

    def __init__(self) -> None:
        self._instruments: dict[tuple[str, LabelItems], object] = {}
        self._create_lock = threading.Lock()
        self.spans = SpanStore()

    # -- instrument access -------------------------------------------------

    def _get(self, cls, name: str, labels: dict[str, str], **kwargs):
        key = (name, _label_items(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            with self._create_lock:
                instrument = self._instruments.get(key)
                if instrument is None:
                    instrument = cls(name, key[1], **kwargs)
                    self._instruments[key] = instrument
        if not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} already registered as {type(instrument).__name__}"
            )
        return instrument

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
        **labels: str,
    ) -> Histogram:
        return self._get(Histogram, name, labels, buckets=buckets)

    def span(self, name: str):
        """A nested phase timer (see :class:`repro.obs.spans.SpanStore`)."""
        return self.spans.span(name)

    # -- snapshots and merging ---------------------------------------------

    def instruments(self) -> Iterator[object]:
        return iter(self._instruments.values())

    def snapshot(self) -> dict:
        """A JSON-able dump of every instrument and span aggregate."""
        metrics = [instrument.as_dict() for instrument in self._instruments.values()]
        kinds = [instrument.kind for instrument in self._instruments.values()]
        return {
            "counters": [m for m, k in zip(metrics, kinds) if k == "counter"],
            "gauges": [m for m, k in zip(metrics, kinds) if k == "gauge"],
            "histograms": [m for m, k in zip(metrics, kinds) if k == "histogram"],
            "spans": self.spans.snapshot(),
        }

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold another registry's snapshot into this one (exact sums).

        Counters and histogram buckets add; gauges take the incoming value
        (last writer wins); span aggregates add wall/CPU/count.  This is the
        cross-process merge used by parallel verification.
        """
        for data in snapshot.get("counters", ()):
            self.counter(data["name"], **data["labels"]).inc(data["value"])
        for data in snapshot.get("gauges", ()):
            self.gauge(data["name"], **data["labels"]).set(data["value"])
        for data in snapshot.get("histograms", ()):
            histogram = self.histogram(
                data["name"], buckets=tuple(data["buckets"]), **data["labels"]
            )
            if list(histogram.buckets) != list(data["buckets"]):
                raise ValueError(
                    f"histogram {data['name']!r} bucket bounds differ across merges"
                )
            for index, bucket_count in enumerate(data["bucket_counts"]):
                histogram.bucket_counts[index] += bucket_count
            histogram.sum += data["sum"]
            histogram.count += data["count"]
        for data in snapshot.get("spans", ()):
            self.spans.add_timing(
                data["path"], data["wall_s"], data["cpu_s"], data["count"]
            )


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram."""

    __slots__ = ()

    def inc(self, amount: int | float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    @property
    def value(self) -> int:
        return 0


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry(MetricsRegistry):
    """The disabled registry: every instrument is a shared no-op.

    ``enabled`` is False so hot paths can hoist a single boolean check and
    skip instrumentation entirely; code that does not bother checking still
    works, it just updates the shared null instrument.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str, **labels: str):
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels: str):
        return _NULL_INSTRUMENT

    def histogram(self, name: str, buckets=DEFAULT_LATENCY_BUCKETS, **labels: str):
        return _NULL_INSTRUMENT

    def span(self, name: str):
        return NULL_SPAN

    def snapshot(self) -> dict:
        return {"counters": [], "gauges": [], "histograms": [], "spans": []}

    def merge_snapshot(self, snapshot: dict) -> None:
        pass


NULL_REGISTRY = NullRegistry()

_current: MetricsRegistry = NULL_REGISTRY


def get_registry() -> MetricsRegistry:
    """The registry instrumented code should report to right now."""
    return _current


def set_registry(registry: MetricsRegistry | None) -> MetricsRegistry:
    """Install ``registry`` (None restores the null registry); returns the
    previously installed one so callers can restore it."""
    global _current
    previous = _current
    _current = registry if registry is not None else NULL_REGISTRY
    return previous


@contextmanager
def use_registry(registry: MetricsRegistry | None = None):
    """Temporarily install a registry (a fresh one if none is given)."""
    if registry is None:
        registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


# -- Prometheus text exposition ---------------------------------------------


def cumulative_view(record: dict) -> list[list]:
    """A histogram record's buckets as explicit cumulative ``[le, count]``
    pairs, ending with ``["+Inf", count]``.

    Snapshot records carry non-cumulative ``bucket_counts`` with an
    *implicit* final overflow bucket (one more count than there are
    bounds) — an alignment convention external consumers have to know.
    This view spells the distribution out the way Prometheus exposes it,
    so percentile math needs no knowledge of the internal layout.
    """
    pairs: list[list] = []
    running = 0
    for bound, bucket_count in zip(record["buckets"], record["bucket_counts"]):
        running += bucket_count
        pairs.append([bound, running])
    pairs.append(["+Inf", record["count"]])
    return pairs


def _metric_name(name: str) -> str:
    return name.replace(".", "_").replace("-", "_")


def _label_text(labels: dict, extra: dict | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(f'{key}="{merged[key]}"' for key in sorted(merged))
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def render_prometheus_snapshot(snapshot: dict) -> str:
    """A registry snapshot's instruments as Prometheus exposition text.

    Renders the ``counters``/``gauges``/``histograms`` sections of
    :meth:`MetricsRegistry.snapshot` (span aggregates are a manifest
    concern — see :func:`repro.obs.manifest.render_prometheus`).  The text
    round-trips through :func:`parse_prometheus`.
    """
    lines: list[str] = []
    by_name: dict[str, list[dict]] = {}
    kinds: dict[str, str] = {}
    for kind in ("counters", "gauges", "histograms"):
        for record in snapshot.get(kind, ()):
            name = _metric_name(record["name"])
            by_name.setdefault(name, []).append(record)
            kinds[name] = kind.rstrip("s")

    for name in sorted(by_name):
        lines.append(f"# TYPE {name} {kinds[name]}")
        for record in by_name[name]:
            labels = record.get("labels", {})
            if kinds[name] == "histogram":
                running = 0
                for bound, bucket_count in zip(
                    record["buckets"], record["bucket_counts"]
                ):
                    running += bucket_count
                    le = _label_text(labels, {"le": _format_value(float(bound))})
                    lines.append(f"{name}_bucket{le} {running}")
                le = _label_text(labels, {"le": "+Inf"})
                lines.append(f"{name}_bucket{le} {record['count']}")
                lines.append(f"{name}_sum{_label_text(labels)} {record['sum']!r}")
                lines.append(f"{name}_count{_label_text(labels)} {record['count']}")
            else:
                value = record["value"]
                text = value if isinstance(value, int) else repr(float(value))
                lines.append(f"{name}{_label_text(labels)} {text}")
    return "\n".join(lines) + "\n" if lines else ""


_LABEL_RE = re.compile(r'(\w+)="((?:[^"\\]|\\.)*)"')
_SAMPLE_RE = re.compile(r"^([A-Za-z_:][A-Za-z0-9_:]*)(\{[^}]*\})?\s+(\S+)$")


def _parse_number(text: str) -> float:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)


def parse_prometheus(text: str) -> dict:
    """Parse exposition text back into a snapshot-shaped dict.

    The inverse of :func:`render_prometheus_snapshot` for the subset of
    the format this package emits: ``# TYPE`` comments declare each
    family, histograms are reassembled from their ``_bucket``/``_sum``/
    ``_count`` series (cumulative bucket counts are de-cumulated back to
    the internal representation).  Unknown comment lines are ignored.
    Returns ``{"counters": [...], "gauges": [...], "histograms": [...]}``.
    """
    types: dict[str, str] = {}
    samples: list[tuple[str, dict, float]] = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        matched = _SAMPLE_RE.match(line)
        if matched is None:
            raise ValueError(f"unparsable exposition line: {raw_line!r}")
        name, label_body, value_text = matched.groups()
        labels = (
            {key: value for key, value in _LABEL_RE.findall(label_body)}
            if label_body
            else {}
        )
        samples.append((name, labels, _parse_number(value_text)))

    def family_of(name: str) -> tuple[str, str]:
        """Resolve a sample name to (family, histogram-part)."""
        for suffix in ("_bucket", "_sum", "_count"):
            family = name[: -len(suffix)] if name.endswith(suffix) else None
            if family and types.get(family) == "histogram":
                return family, suffix[1:]
        return name, ""

    counters: list[dict] = []
    gauges: list[dict] = []
    # Histograms accumulate across their three series, keyed by label set.
    partials: dict[tuple[str, tuple], dict] = {}
    for name, labels, value in samples:
        family, part = family_of(name)
        kind = types.get(family)
        if kind == "histogram":
            bare = {k: v for k, v in labels.items() if k != "le"}
            key = (family, tuple(sorted(bare.items())))
            record = partials.setdefault(
                key,
                {"name": family, "labels": bare, "bounds": [], "sum": 0.0, "count": 0},
            )
            if part == "bucket":
                record["bounds"].append((_parse_number(labels["le"]), int(value)))
            elif part == "sum":
                record["sum"] = value
            elif part == "count":
                record["count"] = int(value)
            continue
        if value not in (float("inf"), float("-inf")) and value.is_integer():
            value = int(value)
        entry = {"name": name, "labels": labels, "value": value}
        if kind == "counter":
            counters.append(entry)
        else:
            gauges.append(entry)

    histograms: list[dict] = []
    for record in partials.values():
        bounds = sorted(record.pop("bounds"), key=lambda pair: pair[0])
        finite = [(bound, total) for bound, total in bounds if bound != float("inf")]
        buckets = [bound for bound, _ in finite]
        cumulative = [total for _, total in finite]
        bucket_counts = [
            total - (cumulative[i - 1] if i else 0)
            for i, total in enumerate(cumulative)
        ]
        bucket_counts.append(record["count"] - (cumulative[-1] if cumulative else 0))
        histograms.append(
            {
                "name": record["name"],
                "labels": record["labels"],
                "buckets": buckets,
                "bucket_counts": bucket_counts,
                "sum": record["sum"],
                "count": record["count"],
            }
        )
    return {"counters": counters, "gauges": gauges, "histograms": histograms}
