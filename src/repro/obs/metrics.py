"""The metrics registry: counters, gauges, and fixed-bucket histograms.

Instrumented pipeline code asks the *current* registry (see
:func:`get_registry`) for named instruments and updates them on hot paths.
By default the current registry is :data:`NULL_REGISTRY`, whose instruments
are shared no-op singletons — so an un-instrumented run pays one attribute
lookup per instrumentation site at *setup* time and nothing per event.
Callers that want metrics install a real :class:`MetricsRegistry` with
:func:`set_registry` or the :func:`use_registry` context manager (the CLI's
``--metrics`` flag does exactly this).

Instruments are keyed by ``(name, sorted labels)`` the way Prometheus keys
time series; asking twice for the same key returns the same instrument.
Registries are deliberately not thread-safe: the pipeline parallelizes by
*process*, and per-worker registries are folded back into the parent with
:meth:`MetricsRegistry.merge_snapshot` (the same discipline as
:class:`~repro.stats.verification.VerificationStats`).
"""

from __future__ import annotations

from bisect import bisect_left
from contextlib import contextmanager
from typing import Iterator

from repro.obs.spans import NULL_SPAN, SpanStore

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "get_registry",
    "set_registry",
    "use_registry",
    "DEFAULT_LATENCY_BUCKETS",
]

LabelItems = tuple[tuple[str, str], ...]

# Upper bounds (seconds) for latency histograms: 1 µs .. ~4 s, doubling.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = tuple(
    1e-6 * 2**i for i in range(23)
)


def _label_items(labels: dict[str, str]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count (events, objects, errors)."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: LabelItems = ()):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def as_dict(self) -> dict:
        return {"name": self.name, "labels": dict(self.labels), "value": self.value}


class Gauge:
    """A point-in-time value (hit rate, queue depth, worker count)."""

    __slots__ = ("name", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, labels: LabelItems = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def as_dict(self) -> dict:
        return {"name": self.name, "labels": dict(self.labels), "value": self.value}


class Histogram:
    """A distribution over fixed bucket upper bounds (Prometheus ``le``).

    ``buckets`` are inclusive upper bounds in increasing order; an implicit
    overflow bucket (``+Inf``) catches everything beyond the last bound.
    ``bucket_counts[i]`` is the *non-cumulative* count of observations with
    ``buckets[i-1] < v <= buckets[i]`` (rendering cumulates them).
    """

    __slots__ = ("name", "labels", "buckets", "bucket_counts", "sum", "count")
    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: LabelItems = (),
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"histogram {name!r} needs increasing bucket bounds")
        self.name = name
        self.labels = labels
        self.buckets = tuple(buckets)
        self.bucket_counts = [0] * (len(buckets) + 1)  # +1 for +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """``(le, cumulative count)`` pairs, ending with ``(inf, count)``."""
        pairs: list[tuple[float, int]] = []
        running = 0
        for bound, bucket_count in zip(self.buckets, self.bucket_counts):
            running += bucket_count
            pairs.append((bound, running))
        pairs.append((float("inf"), self.count))
        return pairs

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "buckets": list(self.buckets),
            "bucket_counts": list(self.bucket_counts),
            "sum": self.sum,
            "count": self.count,
        }


class MetricsRegistry:
    """A live collection of instruments plus the phase-span store."""

    enabled = True

    def __init__(self) -> None:
        self._instruments: dict[tuple[str, LabelItems], object] = {}
        self.spans = SpanStore()

    # -- instrument access -------------------------------------------------

    def _get(self, cls, name: str, labels: dict[str, str], **kwargs):
        key = (name, _label_items(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, key[1], **kwargs)
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} already registered as {type(instrument).__name__}"
            )
        return instrument

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
        **labels: str,
    ) -> Histogram:
        return self._get(Histogram, name, labels, buckets=buckets)

    def span(self, name: str):
        """A nested phase timer (see :class:`repro.obs.spans.SpanStore`)."""
        return self.spans.span(name)

    # -- snapshots and merging ---------------------------------------------

    def instruments(self) -> Iterator[object]:
        return iter(self._instruments.values())

    def snapshot(self) -> dict:
        """A JSON-able dump of every instrument and span aggregate."""
        metrics = [instrument.as_dict() for instrument in self._instruments.values()]
        kinds = [instrument.kind for instrument in self._instruments.values()]
        return {
            "counters": [m for m, k in zip(metrics, kinds) if k == "counter"],
            "gauges": [m for m, k in zip(metrics, kinds) if k == "gauge"],
            "histograms": [m for m, k in zip(metrics, kinds) if k == "histogram"],
            "spans": self.spans.snapshot(),
        }

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold another registry's snapshot into this one (exact sums).

        Counters and histogram buckets add; gauges take the incoming value
        (last writer wins); span aggregates add wall/CPU/count.  This is the
        cross-process merge used by parallel verification.
        """
        for data in snapshot.get("counters", ()):
            self.counter(data["name"], **data["labels"]).inc(data["value"])
        for data in snapshot.get("gauges", ()):
            self.gauge(data["name"], **data["labels"]).set(data["value"])
        for data in snapshot.get("histograms", ()):
            histogram = self.histogram(
                data["name"], buckets=tuple(data["buckets"]), **data["labels"]
            )
            if list(histogram.buckets) != list(data["buckets"]):
                raise ValueError(
                    f"histogram {data['name']!r} bucket bounds differ across merges"
                )
            for index, bucket_count in enumerate(data["bucket_counts"]):
                histogram.bucket_counts[index] += bucket_count
            histogram.sum += data["sum"]
            histogram.count += data["count"]
        for data in snapshot.get("spans", ()):
            self.spans.add_timing(
                data["path"], data["wall_s"], data["cpu_s"], data["count"]
            )


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram."""

    __slots__ = ()

    def inc(self, amount: int | float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    @property
    def value(self) -> int:
        return 0


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry(MetricsRegistry):
    """The disabled registry: every instrument is a shared no-op.

    ``enabled`` is False so hot paths can hoist a single boolean check and
    skip instrumentation entirely; code that does not bother checking still
    works, it just updates the shared null instrument.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str, **labels: str):
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels: str):
        return _NULL_INSTRUMENT

    def histogram(self, name: str, buckets=DEFAULT_LATENCY_BUCKETS, **labels: str):
        return _NULL_INSTRUMENT

    def span(self, name: str):
        return NULL_SPAN

    def snapshot(self) -> dict:
        return {"counters": [], "gauges": [], "histograms": [], "spans": []}

    def merge_snapshot(self, snapshot: dict) -> None:
        pass


NULL_REGISTRY = NullRegistry()

_current: MetricsRegistry = NULL_REGISTRY


def get_registry() -> MetricsRegistry:
    """The registry instrumented code should report to right now."""
    return _current


def set_registry(registry: MetricsRegistry | None) -> MetricsRegistry:
    """Install ``registry`` (None restores the null registry); returns the
    previously installed one so callers can restore it."""
    global _current
    previous = _current
    _current = registry if registry is not None else NULL_REGISTRY
    return previous


@contextmanager
def use_registry(registry: MetricsRegistry | None = None):
    """Temporarily install a registry (a fresh one if none is given)."""
    if registry is None:
        registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
