"""Run manifests: one JSON document per pipeline run, built for diffing.

A manifest captures everything needed to audit or compare two benchmark
runs: what ran (command, config), on what (input files with SHA-256
digests), with which code (python/package versions), how long each phase
took (wall and CPU seconds per span path), and every metric the run
recorded.  ``rpslyzer metrics <manifest.json>`` renders the metric dump as
a Prometheus-style text table for eyeballing or scraping.

Keys are emitted sorted so two runs over the same inputs produce
line-diffable documents.
"""

from __future__ import annotations

import hashlib
import json
import platform
from pathlib import Path
from typing import IO, Iterable

from repro.obs.metrics import (
    MetricsRegistry,
    _label_text,
    render_prometheus_snapshot,
)

__all__ = [
    "MANIFEST_FORMAT",
    "digest_file",
    "digest_inputs",
    "build_manifest",
    "write_manifest",
    "load_manifest",
    "render_prometheus",
    "cache_summary",
]

MANIFEST_FORMAT = "rpslyzer-run-manifest/1"


def digest_file(path: str | Path) -> dict:
    """``{path, bytes, sha256}`` for one input file."""
    path = Path(path)
    digest = hashlib.sha256()
    size = 0
    with open(path, "rb") as stream:
        for block in iter(lambda: stream.read(1 << 20), b""):
            digest.update(block)
            size += len(block)
    return {"path": str(path), "bytes": size, "sha256": digest.hexdigest()}


def digest_inputs(paths: Iterable[str | Path]) -> list[dict]:
    """Digest input files; directories expand to their ``*.db``/``*.db.gz`` dumps."""
    records = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            dumps = sorted(path.glob("*.db")) + sorted(path.glob("*.db.gz"))
            records.extend(digest_file(dump) for dump in dumps)
        elif path.exists():
            records.append(digest_file(path))
        else:
            records.append({"path": str(path), "bytes": 0, "sha256": None})
    return sorted(records, key=lambda record: record["path"])


def _versions() -> dict:
    import repro

    return {
        "repro": repro.__version__,
        "python": platform.python_version(),
        "platform": platform.platform(),
    }


def build_manifest(
    command: str,
    registry: MetricsRegistry,
    *,
    inputs: Iterable[str | Path] = (),
    config: dict | None = None,
    degradation: dict | None = None,
    profile: dict | None = None,
    trace: dict | None = None,
) -> dict:
    """Assemble the manifest document from a finished run's registry.

    ``degradation`` is the run's
    :meth:`~repro.core.degradation.DegradationReport.as_dict` — how the
    run deviated from the clean path (requeued chunks, dropped objects);
    always present in the document so clean and degraded runs stay
    line-diffable.  ``profile`` is a
    :meth:`~repro.obs.profiler.PhaseProfiler.snapshot` resource timeline
    and ``trace`` a :meth:`~repro.obs.trace.Tracer.stats` summary; both
    keys are always emitted (null when the run recorded neither).
    """
    snapshot = registry.snapshot()
    phases = {
        record["path"]: {
            "count": record["count"],
            "wall_s": record["wall_s"],
            "cpu_s": record["cpu_s"],
        }
        for record in snapshot.pop("spans")
    }
    return {
        "format": MANIFEST_FORMAT,
        "command": command,
        "versions": _versions(),
        "inputs": digest_inputs(inputs),
        "config": config or {},
        "phases": phases,
        "metrics": snapshot,
        "degradation": degradation if degradation is not None else {"events": [], "total": 0},
        "profile": profile,
        "trace": trace,
    }


def write_manifest(destination: str | Path | IO[str], manifest: dict) -> None:
    """Serialize a manifest as stable, sorted, indented JSON."""
    if hasattr(destination, "write"):
        json.dump(manifest, destination, indent=2, sort_keys=True)
        destination.write("\n")
        return
    with open(destination, "w", encoding="utf-8") as stream:
        json.dump(manifest, stream, indent=2, sort_keys=True)
        stream.write("\n")


def load_manifest(source: str | Path | IO[str]) -> dict:
    """Read a manifest back; rejects documents of an unknown format."""
    if hasattr(source, "read"):
        manifest = json.load(source)
    else:
        with open(source, encoding="utf-8") as stream:
            manifest = json.load(stream)
    if manifest.get("format") != MANIFEST_FORMAT:
        raise ValueError(f"not a run manifest: format={manifest.get('format')!r}")
    return manifest


def cache_summary(manifest: dict, cache_dir: str | Path | None = None) -> dict:
    """Cache-effectiveness figures extracted from a run manifest.

    Gathers the verifier's per-hop memo cache (hits, misses, evictions,
    hit rate) and the compiled-index cache (disk hits/misses, compile
    seconds) into one flat dict, so ``rpslyzer metrics`` and the benchmark
    suite can report cache behaviour without re-parsing the raw metric
    dump.  Counters that the run never touched read as zero.

    Also inspects the on-disk index cache (``cache_dir`` or the default
    ``~/.cache/rpslyzer``): ``disk_cache_entries`` is None when the
    directory does not exist yet — a fresh machine is a normal state, not
    an error, and callers print an explicit "no cache" line for it.
    """
    metrics = manifest.get("metrics", {})

    def counter(name: str, **labels: str) -> int:
        for record in metrics.get("counters", ()):
            if record["name"] == name and record.get("labels", {}) == labels:
                return record["value"]
        return 0

    def gauge(name: str) -> float:
        for record in metrics.get("gauges", ()):
            if record["name"] == name and not record.get("labels"):
                return record["value"]
        return 0.0

    hop_hits = counter("verify_hop_cache_total", result="hit")
    hop_misses = counter("verify_hop_cache_total", result="miss")
    hop_total = hop_hits + hop_misses
    index_hits = counter("index_cache_total", result="hit")
    index_misses = counter("index_cache_total", result="miss")
    summary = {
        "hop_cache_hits": hop_hits,
        "hop_cache_misses": hop_misses,
        "hop_cache_evictions": counter("verify_hop_cache_evictions_total"),
        "hop_cache_hit_rate": hop_hits / hop_total if hop_total else 0.0,
        "index_cache_hits": index_hits,
        "index_cache_misses": index_misses,
        "index_compile_seconds": gauge("index_compile_seconds"),
        # mmap-load figures (format-2 flat envelope): how long attaching
        # the cached artifact took and how many bytes stayed file-backed.
        "index_load_seconds": gauge("index_load_seconds"),
        "index_mmap_bytes": gauge("index_mmap_bytes"),
        # Incremental-ingestion figures: how many journal patches the
        # index has absorbed and what the last one cost.
        "index_generation": gauge("index_generation"),
        "delta_apply_seconds": gauge("delta_apply_seconds"),
        "journal_serials": {
            record.get("labels", {}).get("source", "?"): record["value"]
            for record in metrics.get("gauges", ())
            if record["name"] == "journal_serial"
        },
    }
    summary.update(_disk_cache_summary(cache_dir))
    return summary


def _disk_cache_summary(cache_dir: str | Path | None) -> dict:
    """On-disk index-cache figures; tolerates a directory that never
    existed (``disk_cache_entries`` is None) and any I/O error."""
    from repro.core.compiled import default_cache_dir  # lazy: import cycle

    directory = Path(cache_dir) if cache_dir else default_cache_dir()
    entries: int | None = None
    total_bytes = 0
    try:
        if directory.is_dir():
            artifacts = [path for path in directory.iterdir() if path.is_file()]
            entries = len(artifacts)
            total_bytes = sum(path.stat().st_size for path in artifacts)
    except OSError:
        entries = None
        total_bytes = 0
    return {
        "disk_cache_dir": str(directory),
        "disk_cache_entries": entries,
        "disk_cache_bytes": total_bytes,
    }


# -- Prometheus-style rendering --------------------------------------------


def render_prometheus(manifest: dict) -> str:
    """The manifest's metrics and phases as Prometheus exposition text.

    The instrument families delegate to
    :func:`repro.obs.metrics.render_prometheus_snapshot` (whose output
    round-trips through :func:`repro.obs.metrics.parse_prometheus`); phase
    aggregates follow as ``repro_phase_*`` gauges.
    """
    lines: list[str] = []
    rendered = render_prometheus_snapshot(manifest.get("metrics", {}))
    if rendered:
        lines.extend(rendered.rstrip("\n").split("\n"))

    phases = manifest.get("phases", {})
    if phases:
        lines.append("# TYPE repro_phase_wall_seconds gauge")
        for path in sorted(phases):
            label = _label_text({"phase": path})
            lines.append(
                f"repro_phase_wall_seconds{label} {phases[path]['wall_s']!r}"
            )
        lines.append("# TYPE repro_phase_cpu_seconds gauge")
        for path in sorted(phases):
            label = _label_text({"phase": path})
            lines.append(
                f"repro_phase_cpu_seconds{label} {phases[path]['cpu_s']!r}"
            )
        lines.append("# TYPE repro_phase_count gauge")
        for path in sorted(phases):
            label = _label_text({"phase": path})
            lines.append(f"repro_phase_count{label} {phases[path]['count']}")
    return "\n".join(lines) + "\n"
