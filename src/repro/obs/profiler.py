"""A lightweight phase resource profiler: wall/CPU/RSS sampled per span.

:class:`PhaseProfiler` runs a daemon thread that periodically records a
``{t, phase, cpu_s, rss_kb}`` sample, attributing each to whatever span
path is active on the observed registry's :class:`~repro.obs.spans.
SpanStore` at that instant.  The result is a resource *timeline* — which
phase was running when memory peaked, how CPU accumulated across parse vs
verify — recorded into run manifests (``--profile`` with ``--metrics``)
and benchmark manifests.

Bounded by construction: when the sample list reaches ``max_samples`` it
is halved (every other sample kept) and the interval doubled, so memory
stays flat over arbitrarily long runs while resolution degrades
gracefully — the same discipline as the span store's aggregates.

RSS comes from ``/proc/self/statm`` where available (Linux), falling back
to ``resource.getrusage`` peak RSS elsewhere; no third-party dependency.
"""

from __future__ import annotations

import os
import threading
import time

__all__ = ["PhaseProfiler"]

try:
    _PAGE_KB = os.sysconf("SC_PAGE_SIZE") / 1024.0
except (ValueError, OSError, AttributeError):  # pragma: no cover - non-POSIX
    _PAGE_KB = 4.0


def _rss_kb() -> int:
    """Current resident set size in KiB (best effort, never raises)."""
    try:
        with open("/proc/self/statm", encoding="ascii") as stream:
            return int(int(stream.read().split()[1]) * _PAGE_KB)
    except (OSError, ValueError, IndexError):
        pass
    try:  # pragma: no cover - exercised only off-Linux
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # ru_maxrss is KiB on Linux, bytes on macOS.
        return int(peak / 1024) if peak > 1 << 30 else int(peak)
    except Exception:  # pragma: no cover
        return 0


class PhaseProfiler:
    """Samples the process's resource usage, tagged with the active span.

    ``registry`` supplies the span store whose current path labels each
    sample (None leaves phases blank).  Use as a context manager or via
    :meth:`start`/:meth:`stop`; :meth:`snapshot` returns the JSON-able
    timeline for embedding in a manifest.
    """

    def __init__(self, registry=None, interval: float = 0.05, max_samples: int = 2400):
        if interval <= 0:
            raise ValueError("interval must be positive")
        if max_samples < 4:
            raise ValueError("max_samples must be at least 4")
        self._spans = getattr(registry, "spans", None)
        self.initial_interval = float(interval)
        self.interval = float(interval)
        self.max_samples = int(max_samples)
        self.samples: list[dict] = []
        self.peak_rss_kb = 0
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None
        self._started_at: float | None = None
        self.duration_s = 0.0

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "PhaseProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._started_at = time.monotonic()
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._run, name="rpslyzer-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop_event.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        if self._started_at is not None:
            self.duration_s += time.monotonic() - self._started_at
            self._started_at = None

    def __enter__(self) -> "PhaseProfiler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- sampling --------------------------------------------------------

    def _run(self) -> None:
        while not self._stop_event.wait(self.interval):
            self._sample()

    def _sample(self) -> None:
        phase = ""
        if self._spans is not None:
            try:
                phase = self._spans.current_path()
            except Exception:  # racing the main thread's span stack
                phase = ""
        rss = _rss_kb()
        if rss > self.peak_rss_kb:
            self.peak_rss_kb = rss
        started = self._started_at if self._started_at is not None else time.monotonic()
        self.samples.append(
            {
                "t": round(time.monotonic() - started, 3),
                "phase": phase,
                "cpu_s": round(time.process_time(), 3),
                "rss_kb": rss,
            }
        )
        if len(self.samples) >= self.max_samples:
            # Halve resolution instead of growing: drop every other sample
            # and sample half as often from here on.
            del self.samples[::2]
            self.interval *= 2

    # -- output ----------------------------------------------------------

    def snapshot(self) -> dict:
        """The JSON-able timeline recorded so far (manifest ``profile``)."""
        phases: dict[str, int] = {}
        for sample in self.samples:
            label = sample["phase"] or "<none>"
            phases[label] = phases.get(label, 0) + 1
        duration = self.duration_s
        if self._started_at is not None:
            duration += time.monotonic() - self._started_at
        return {
            "interval_s": self.interval,
            "initial_interval_s": self.initial_interval,
            "duration_s": round(duration, 3),
            "sample_count": len(self.samples),
            "peak_rss_kb": self.peak_rss_kb,
            "phase_sample_counts": phases,
            "samples": list(self.samples),
        }
