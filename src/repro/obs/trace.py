"""Decision-provenance tracing: who decided what, for sampled routes.

The paper's verdicts are *attributable* — every hop classification traces
back to an aut-num rule, a filter term, a relaxation tier, or a safelisted
relationship.  This module records that chain as compact JSONL events so a
surprising verdict can be explained after the fact (``rpslyzer explain``,
``rpslyzer trace``) instead of re-running under a debugger.

Sampling keeps the layer bounded on bulk runs:

* **head sampling** — a seeded, content-keyed 1-in-N decision per route
  (:func:`route_trace_id` hashes ⟨collector, peer, prefix, path⟩ with the
  seed, so serial and parallel runs sample the *same* routes);
* **tail sampling** — routes whose verdicts include a status in
  ``trace_statuses`` (default: ``unverified``) are always kept, decided
  after verification from the buffered hop reports.

Head-sampled routes emit every hop; tail-sampled routes emit only their
*evidence* hops (the ones whose status is in ``trace_statuses``) plus the
route event carrying the full verdict census — the hop that forced the
route to be kept is the explanation, and skipping the rest is what keeps
default-sampled tracing within a few percent of untraced wall time on
worlds where mismatches are common.

The deep filter-evaluation chain (every :class:`~repro.core.filter_match.
Eval` combinator step) is recorded only for head-sampled routes and only
on hop-cache misses; everything else in an event derives from the
immutable :class:`~repro.core.report.HopReport`, so tracing never changes
what verification computes.

Zero cost when disabled: the module-level default is :data:`NULL_TRACER`
(same trick as :class:`~repro.obs.metrics.NullRegistry`) and the verifier
hoists one ``is None`` check per route.

Multiprocess collection: each worker's tracer spills to a line-buffered
per-worker JSONL file; the parent merges the spill directory after the
pool drains, deduplicating by ``(trace id, event type, seq)`` so chunk
retries and killed workers never duplicate or lose committed events (a
truncated final line from a SIGKILLed worker is skipped, not fatal).
"""

from __future__ import annotations

import hashlib
import json
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import IO, TYPE_CHECKING, Iterable

from repro.obs.metrics import get_registry

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.bgp.table import RouteEntry
    from repro.core.report import HopReport, RouteReport

__all__ = [
    "TRACE_FORMAT",
    "TraceConfig",
    "RouteTrace",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "route_trace_id",
    "event_key",
    "event_sort_key",
    "canonical_events",
    "read_trace_events",
    "write_trace_file",
    "summarize_events",
]

TRACE_FORMAT = "rpslyzer-trace/1"

# Fields that legitimately differ between serial and parallel runs of the
# same table: which process emitted the event, from which chunk, under
# which span, whether the memo cache answered, and the deep chain (only
# collected on cache misses).  Everything else is a pure function of the
# route and its HopReports, so stripping these yields a run-invariant view.
_VOLATILE_FIELDS = frozenset({"worker", "chunk", "phase", "cached", "chain"})

# Hop payloads are cached by report identity (the verifier memoizes
# HopReports, so the same object recurs across routes); cleared wholesale
# at this many entries, mirroring the verifier's own hop-cache policy.
_PAYLOAD_CACHE_MAX = 1 << 16

# status -> label, built on first use: importing repro.core.status at
# module scope would cycle (core.verify imports this module).
_STATUS_LABELS: dict | None = None


def _status_labels() -> dict:
    global _STATUS_LABELS
    if _STATUS_LABELS is None:
        from repro.core.status import VerifyStatus

        _STATUS_LABELS = {status: status.label for status in VerifyStatus}
    return _STATUS_LABELS


@dataclass(frozen=True, slots=True)
class TraceConfig:
    """Sampling and bounding knobs for a :class:`Tracer`.

    ``sample_rate`` is the head-sampling rate (1-in-N; ``1`` traces every
    route); ``trace_statuses`` are hop status labels that force a route to
    be kept regardless of head sampling; ``deep`` additionally records the
    filter-evaluation path for head-sampled routes; ``max_events`` caps the
    total events a tracer will hold/emit (the rest are counted as dropped).
    """

    sample_rate: int = 128
    trace_statuses: frozenset[str] = frozenset({"unverified"})
    deep: bool = True
    max_events: int = 250_000
    seed: int = 0


# The id key's components recur heavily across a routing table — the same
# prefix from every collector/peer, the same AS path for every prefix an
# origin announces — so each conversion is memoized (bounded, content-
# keyed, therefore identical in every process).
_PREFIX_STRS: dict = {}
_PATH_STRS: dict = {}
_INT_STRS: dict = {}


def _prefix_str(prefix) -> str:
    text = _PREFIX_STRS.get(prefix)
    if text is None:
        if len(_PREFIX_STRS) >= _PAYLOAD_CACHE_MAX:
            _PREFIX_STRS.clear()
        _PREFIX_STRS[prefix] = text = str(prefix)
    return text


def _path_str(as_path: tuple) -> str:
    text = _PATH_STRS.get(as_path)
    if text is None:
        if len(_PATH_STRS) >= _PAYLOAD_CACHE_MAX:
            _PATH_STRS.clear()
        _PATH_STRS[as_path] = text = ",".join(map(str, as_path))
    return text


def _int_str(value: int) -> str:
    text = _INT_STRS.get(value)
    if text is None:
        if len(_INT_STRS) >= _PAYLOAD_CACHE_MAX:
            _INT_STRS.clear()
        _INT_STRS[value] = text = str(value)
    return text


def route_trace_id(entry: "RouteEntry", seed: int = 0) -> str:
    """A stable 64-bit id for one observed route (hex, 16 chars).

    Content-keyed (collector, peer, prefix, AS-path) plus the sampling
    seed — never process- or run-dependent — so every worker, the serial
    fallback, and a replay all agree on the id *and* on the head-sampling
    decision derived from it.
    """
    key = "|".join(
        (
            entry.collector,
            _int_str(entry.peer_asn),
            _prefix_str(entry.prefix),
            _path_str(entry.as_path),
            _int_str(seed),
        )
    )
    return hashlib.blake2b(key.encode("utf-8"), digest_size=8).hexdigest()


class RouteTrace:
    """Per-route trace state; hops are buffered for head samples only.

    Tail-sampled routes need no per-hop buffering: the keep/drop decision
    and the evidence hops both come straight from the immutable
    ``RouteReport`` at commit time, which is what makes tracing nearly
    free for the unsampled majority of routes.  ``wanted`` is the tail
    statuses (as :class:`~repro.core.status.VerifyStatus` members)
    snapshotted from the tracer's config.
    """

    __slots__ = ("trace_id", "head", "deep", "wanted", "hops")

    def __init__(
        self,
        trace_id: str,
        head: bool,
        deep: bool,
        wanted: frozenset = frozenset(),
    ):
        self.trace_id = trace_id
        self.head = head
        self.deep = deep
        self.wanted = wanted
        self.hops: list[tuple["HopReport", bool, tuple[str, ...]]] = []

    def add_hop(
        self,
        report: "HopReport",
        cached: bool,
        chain: list[str] | None,
    ) -> None:
        self.hops.append((report, cached, tuple(chain) if chain else ()))


class Tracer:
    """Collects decision-provenance events for sampled routes.

    ``sink`` directs events to a line-buffered JSONL file (the worker spill
    mode — every committed event reaches the OS before the next, so a
    SIGKILL loses at most a partial final line) or keeps them on
    ``self.events`` (the in-process default).  ``worker_id``/``chunk_id``
    stamp emitted events for post-merge attribution.
    """

    enabled = True

    def __init__(
        self,
        config: TraceConfig | None = None,
        *,
        sink: str | Path | IO[str] | None = None,
        worker_id: int | None = None,
    ):
        self.config = config if config is not None else TraceConfig()
        self._lines: list[str] = []
        self.worker_id = worker_id
        self.chunk_id: int | None = None
        self.emitted = 0
        self.dropped = 0
        self.sampled = {"head": 0, "verdict": 0}
        self._keys: set[str] = set()
        self._wanted: frozenset | None = None
        self._payloads: dict[int, tuple] = {}
        self._stream: IO[str] | None = None
        self._owns_stream = False
        if sink is not None:
            if hasattr(sink, "write"):
                self._stream = sink  # type: ignore[assignment]
            else:
                self._stream = open(
                    sink, "a", encoding="utf-8", buffering=1  # noqa: SIM115
                )
                self._owns_stream = True

    def close(self) -> None:
        if self._stream is not None and self._owns_stream:
            self._stream.close()
            self._stream = None

    @property
    def events(self) -> list[dict]:
        """The emitted events, as dicts (empty in sink/spill mode).

        Events are held JSON-serialized — strings are invisible to the
        cyclic GC, so a bulk run's trace doesn't grow the tracked heap and
        trigger extra full collections over the (large) IR — and are
        deserialized on access; each call returns a fresh list.
        """
        return [json.loads(line) for line in self._lines]

    # -- the verifier-facing surface ------------------------------------

    def route(self, entry: "RouteEntry") -> RouteTrace | None:
        """Start buffering one route; None means "do not trace this route".

        Returns a buffer whenever the route is head-sampled *or* tail
        sampling is configured (the keep/drop decision then waits for the
        verdicts in :meth:`commit`).
        """
        config = self.config
        wanted = self._wanted
        if wanted is None:
            labels = _status_labels()
            wanted = self._wanted = frozenset(
                status
                for status, label in labels.items()
                if label in config.trace_statuses
            )
        trace_id = route_trace_id(entry, config.seed)
        head = config.sample_rate <= 1 or int(trace_id, 16) % config.sample_rate == 0
        if not head and not wanted:
            return None
        return RouteTrace(trace_id, head, head and config.deep, wanted)

    def commit(self, trace: RouteTrace, report: "RouteReport") -> bool:
        """Emit the route if sampling keeps it; returns whether.

        Head samples emit every buffered hop (with cache/chain capture);
        tail samples are decided — and their evidence hops gathered —
        directly from the report's immutable hops, so the unsampled
        majority of routes pays one status scan here and nothing per hop
        during verification.
        """
        hops = report.hops
        wanted = trace.wanted
        head = trace.head
        if head:
            reason = "head"
        else:
            for hop in hops:
                if hop.status in wanted:
                    break
            else:
                return False
            reason = "verdict"
        self.sampled[reason] += 1
        trace_id = trace.trace_id
        entry = report.entry
        labels = _status_labels()
        counts: dict = {}
        for hop in hops:
            status = hop.status
            counts[status] = counts.get(status, 0) + 1
        event = {
            "event": "route",
            "trace": trace_id,
            "sampled": reason,
            "collector": entry.collector,
            "peer": entry.peer_asn,
            "prefix": _prefix_str(entry.prefix),
            "as_path": list(entry.as_path),
            "verdicts": {labels[status]: n for status, n in sorted(counts.items())},
        }
        if report.ignored is not None:
            event["ignored"] = report.ignored
        decoration = self._decoration()
        if decoration:
            event.update(decoration)
        self._emit((trace_id, "route", -1), event)
        if head:
            for seq, (hop, cached, chain) in enumerate(trace.hops):
                self._emit(
                    (trace_id, "hop", seq),
                    self._hop_event(trace_id, seq, hop, cached, chain, decoration),
                )
        else:
            if decoration:
                deco_fragment = "," + json.dumps(
                    decoration, separators=(",", ":"), sort_keys=True
                )[1:-1]
            else:
                deco_fragment = ""
            for seq, hop in enumerate(hops):
                if hop.status not in wanted:
                    continue  # tail samples keep only their evidence hops
                self._emit_line(
                    (trace_id, "hop", seq),
                    self._tail_hop_line(trace_id, seq, hop, deco_fragment),
                )
        return True

    def _hop_event(
        self,
        trace_id: str,
        seq: int,
        hop: "HopReport",
        cached: bool | None,
        chain: tuple[str, ...],
        decoration: dict,
    ) -> dict:
        entry = self._payload_entry(hop)
        event = {
            "event": "hop",
            "trace": trace_id,
            "span": f"{trace_id}:{seq:02d}",
            "seq": seq,
            **entry[1],
        }
        if cached is not None:
            event["cached"] = cached
        if chain:
            event["chain"] = list(chain)
        if decoration:
            event.update(decoration)
        return event

    def _tail_hop_line(
        self, trace_id: str, seq: int, hop: "HopReport", deco_fragment: str
    ) -> str:
        """A tail-sample hop event, assembled as its JSONL line directly.

        Everything variable is a hex id or an integer; the report-derived
        body and the decoration arrive as pre-serialized fragments, so the
        hot path is one string format instead of a dict build plus dump.
        """
        return '{"event":"hop","trace":"%s","span":"%s:%02d","seq":%d,%s%s}' % (
            trace_id,
            trace_id,
            seq,
            seq,
            self._payload_entry(hop)[2],
            deco_fragment,
        )

    def _payload_entry(self, hop: "HopReport") -> tuple:
        """(report, payload dict, serialized payload fragment), memoized."""
        key = id(hop)
        entry = self._payloads.get(key)
        if entry is None or entry[0] is not hop:
            if len(self._payloads) >= _PAYLOAD_CACHE_MAX:
                self._payloads.clear()
            payload = self._hop_payload(hop)
            fragment = json.dumps(payload, separators=(",", ":"), sort_keys=True)[1:-1]
            entry = (hop, payload, fragment)
            self._payloads[key] = entry
        return entry

    def _hop_payload(self, hop: "HopReport") -> dict:
        """The report-derived (route-independent) slice of a hop event.

        Shared across every event that cites the same memoized report —
        including the ``items`` list, which is never mutated downstream.
        """
        payload = {
            "direction": hop.direction,
            "from": hop.from_asn,
            "to": hop.to_asn,
            "status": _status_labels()[hop.status],
            "items": [str(item) for item in hop.items],
            "peer_matched": hop.peer_matched,
        }
        if hop.rule_index is not None:
            payload["rule"] = hop.rule_index
        if hop.rule_source:
            payload["registry"] = hop.rule_source
        tier = hop.special_case
        if tier is not None:
            payload["tier"] = tier.value
        unrecorded = hop.unrecorded_reason
        if unrecorded is not None:
            payload["unrecorded"] = unrecorded.value
        return payload

    def _decoration(self) -> dict:
        """Per-commit volatile stamps (worker, chunk, active span path)."""
        decoration = {}
        if self.worker_id is not None:
            decoration["worker"] = self.worker_id
        if self.chunk_id is not None:
            decoration["chunk"] = self.chunk_id
        phase = get_registry().spans.current_path()
        if phase:
            decoration["phase"] = phase
        return decoration

    def _emit(self, key: tuple, event: dict) -> bool:
        token = "%s|%s|%s" % key  # a string key stays off the GC's books
        if token in self._keys:
            return False
        if self.emitted >= self.config.max_events:
            self.dropped += 1
            return False
        self._append(token, json.dumps(event, separators=(",", ":"), sort_keys=True))
        return True

    def _emit_line(self, key: tuple, line: str) -> bool:
        token = "%s|%s|%s" % key
        if token in self._keys:
            return False
        if self.emitted >= self.config.max_events:
            self.dropped += 1
            return False
        self._append(token, line)
        return True

    def _append(self, token: str, line: str) -> None:
        self._keys.add(token)
        self.emitted += 1
        if self._stream is not None:
            self._stream.write(line + "\n")
        else:
            self._lines.append(line)

    # -- merging and output ----------------------------------------------

    def merge_events(self, events: Iterable[dict]) -> int:
        """Fold already-emitted events (e.g. a worker's spill) into this
        tracer, deduplicating against everything seen so far."""
        merged = 0
        for event in events:
            if self._emit(event_key(event), event):
                merged += 1
        return merged

    def merge_directory(self, directory: str | Path) -> int:
        """Merge every ``*.jsonl`` spill file under ``directory``."""
        directory = Path(directory)
        if not directory.is_dir():
            return 0
        merged = 0
        for path in sorted(directory.glob("*.jsonl")):
            merged += self.merge_events(read_trace_events(path))
        return merged

    def write(self, destination: str | Path | IO[str]) -> None:
        """Write the in-memory events as sorted, stable JSONL."""
        write_trace_file(destination, self.events)

    def stats(self) -> dict:
        return {
            "format": TRACE_FORMAT,
            "events": self.emitted,
            "dropped": self.dropped,
            "sampled": dict(self.sampled),
            "sample_rate": self.config.sample_rate,
            "seed": self.config.seed,
        }


class NullTracer(Tracer):
    """The disabled tracer: never samples, never emits, never allocates."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(TraceConfig(sample_rate=0, trace_statuses=frozenset()))

    def route(self, entry: "RouteEntry") -> RouteTrace | None:
        return None

    def commit(self, trace: RouteTrace, report: "RouteReport") -> bool:
        return False


NULL_TRACER = NullTracer()

_current: Tracer = NULL_TRACER


def get_tracer() -> Tracer:
    """The tracer instrumented code should report to right now."""
    return _current


def set_tracer(tracer: Tracer | None) -> Tracer:
    """Install ``tracer`` (None restores the null tracer); returns the
    previously installed one so callers can restore it."""
    global _current
    previous = _current
    _current = tracer if tracer is not None else NULL_TRACER
    return previous


@contextmanager
def use_tracer(tracer: Tracer | None = None):
    """Temporarily install a tracer (a fresh default one if none given)."""
    if tracer is None:
        tracer = Tracer()
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


# -- event utilities ---------------------------------------------------------


def event_key(event: dict) -> tuple:
    """The dedup identity of one event: (trace, type, seq)."""
    return (event.get("trace"), event.get("event"), event.get("seq", -1))


def event_sort_key(event: dict) -> tuple:
    """Stable output order: by trace id, route before hops, then seq."""
    return (
        event.get("trace") or "",
        0 if event.get("event") == "route" else 1,
        event.get("seq", -1),
    )


def canonical_events(events: Iterable[dict]) -> list[dict]:
    """A run-invariant view: volatile fields stripped, stable order.

    Two runs of the same table with the same :class:`TraceConfig` — serial,
    parallel, or parallel with workers dying — canonicalize to the same
    list; the differential tests assert exactly that.
    """
    stripped = (
        {key: value for key, value in event.items() if key not in _VOLATILE_FIELDS}
        for event in events
    )
    return sorted(stripped, key=event_sort_key)


def read_trace_events(source: str | Path) -> list[dict]:
    """Read a trace JSONL file, skipping unparsable lines.

    A worker SIGKILLed mid-write leaves at most one truncated trailing
    line in its spill file; tolerating (and dropping) such lines is what
    lets traces survive injected worker kills.
    """
    events: list[dict] = []
    with open(source, encoding="utf-8", errors="replace") as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(event, dict):
                events.append(event)
    return events


def write_trace_file(destination: str | Path | IO[str], events: Iterable[dict]) -> None:
    """Write events as JSONL in stable order (see :func:`event_sort_key`)."""
    lines = [
        json.dumps(event, separators=(",", ":"), sort_keys=True)
        for event in sorted(events, key=event_sort_key)
    ]
    body = "\n".join(lines) + ("\n" if lines else "")
    if hasattr(destination, "write"):
        destination.write(body)
        return
    with open(destination, "w", encoding="utf-8") as stream:
        stream.write(body)


def summarize_events(events: Iterable[dict]) -> dict:
    """Aggregate a trace into the figures ``rpslyzer trace`` prints."""
    routes = 0
    hops = 0
    sampled: dict[str, int] = {}
    hop_status: dict[str, int] = {}
    evidence: dict[str, int] = {}
    workers: set = set()
    for event in events:
        kind = event.get("event")
        if kind == "route":
            routes += 1
            reason = event.get("sampled", "?")
            sampled[reason] = sampled.get(reason, 0) + 1
        elif kind == "hop":
            hops += 1
            status = event.get("status", "?")
            hop_status[status] = hop_status.get(status, 0) + 1
            for item in event.get("items", ()):
                name = str(item).split("(", 1)[0]
                evidence[name] = evidence.get(name, 0) + 1
        if "worker" in event:
            workers.add(event["worker"])
    top_evidence = sorted(evidence.items(), key=lambda kv: (-kv[1], kv[0]))[:10]
    return {
        "routes": routes,
        "hops": hops,
        "sampled": sampled,
        "hop_status": hop_status,
        "top_evidence": top_evidence,
        "workers": len(workers),
    }
