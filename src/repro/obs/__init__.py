"""``repro.obs`` — pipeline observability: metrics, phase spans, manifests.

Three pieces, designed to cost nothing when unused:

* :mod:`repro.obs.metrics` — a registry of named counters, gauges, and
  fixed-bucket histograms.  The module-level default is a *null* registry
  whose instruments are shared no-ops, so instrumented hot paths (the
  lexer, the verifier's per-hop check) add no measurable overhead until a
  caller installs a real registry;
* :mod:`repro.obs.spans` — nested phase timers aggregating wall and CPU
  seconds per slash-separated path (``parse/RIPE/lex``, ``verify``);
* :mod:`repro.obs.manifest` — one diffable JSON document per run (input
  digests, config, per-phase timings, full metric dump, versions), plus a
  Prometheus-style text rendering used by ``rpslyzer metrics``.

Typical use::

    from repro.obs import MetricsRegistry, use_registry, build_manifest

    with use_registry(MetricsRegistry()) as registry:
        stats = api.verify_table(ir, rels, entries, processes=4)
    manifest = build_manifest("verify", registry, inputs=["table.txt"])
"""

from repro.obs.manifest import (
    MANIFEST_FORMAT,
    build_manifest,
    cache_summary,
    digest_file,
    digest_inputs,
    load_manifest,
    render_prometheus,
    write_manifest,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.spans import NULL_SPAN, SpanAggregate, SpanStore, timed_iter

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MANIFEST_FORMAT",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_SPAN",
    "NullRegistry",
    "SpanAggregate",
    "SpanStore",
    "build_manifest",
    "cache_summary",
    "digest_file",
    "digest_inputs",
    "get_registry",
    "load_manifest",
    "render_prometheus",
    "set_registry",
    "timed_iter",
    "use_registry",
    "write_manifest",
]
