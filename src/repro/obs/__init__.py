"""``repro.obs`` — pipeline observability: metrics, phase spans, manifests.

Three pieces, designed to cost nothing when unused:

* :mod:`repro.obs.metrics` — a registry of named counters, gauges, and
  fixed-bucket histograms.  The module-level default is a *null* registry
  whose instruments are shared no-ops, so instrumented hot paths (the
  lexer, the verifier's per-hop check) add no measurable overhead until a
  caller installs a real registry;
* :mod:`repro.obs.spans` — nested phase timers aggregating wall and CPU
  seconds per slash-separated path (``parse/RIPE/lex``, ``verify``);
* :mod:`repro.obs.manifest` — one diffable JSON document per run (input
  digests, config, per-phase timings, full metric dump, versions), plus a
  Prometheus-style text rendering used by ``rpslyzer metrics``;
* :mod:`repro.obs.trace` — sampled decision-provenance events (which
  rule/filter/tier produced each verdict) as JSONL, with a null default
  tracer mirroring the null registry;
* :mod:`repro.obs.profiler` — a background wall/CPU/RSS sampler tagging
  each sample with the active span path (manifest resource timelines);
* :mod:`repro.obs.flight` — the serve daemon's always-on bounded ring of
  lifecycle events (worker churn, breaker transitions, reloads) with
  automatic incident dumps, plus the request correlation-id helpers.

Typical use::

    from repro.obs import MetricsRegistry, use_registry, build_manifest

    with use_registry(MetricsRegistry()) as registry:
        with api.open_session(ir, as_rel=rels) as session:
            stats = session.verify_table(entries, processes=4)
    manifest = build_manifest("verify", registry, inputs=["table.txt"])
"""

from repro.obs.flight import (
    FLIGHT_FORMAT,
    NULL_FLIGHT,
    FlightRecorder,
    NullFlightRecorder,
    clean_request_id,
    get_flight_recorder,
    new_request_id,
    read_flight_events,
    set_flight_recorder,
    use_flight_recorder,
)
from repro.obs.manifest import (
    MANIFEST_FORMAT,
    build_manifest,
    cache_summary,
    digest_file,
    digest_inputs,
    load_manifest,
    render_prometheus,
    write_manifest,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_REGISTRY,
    PROMETHEUS_CONTENT_TYPE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    cumulative_view,
    get_registry,
    parse_prometheus,
    render_prometheus_snapshot,
    set_registry,
    use_registry,
)
from repro.obs.profiler import PhaseProfiler
from repro.obs.spans import NULL_SPAN, SpanAggregate, SpanStore, timed_iter
from repro.obs.trace import (
    NULL_TRACER,
    TRACE_FORMAT,
    NullTracer,
    TraceConfig,
    Tracer,
    canonical_events,
    get_tracer,
    read_trace_events,
    route_trace_id,
    set_tracer,
    summarize_events,
    use_tracer,
    write_trace_file,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "FLIGHT_FORMAT",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MANIFEST_FORMAT",
    "MetricsRegistry",
    "NULL_FLIGHT",
    "NULL_REGISTRY",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullFlightRecorder",
    "NullRegistry",
    "NullTracer",
    "PROMETHEUS_CONTENT_TYPE",
    "PhaseProfiler",
    "SpanAggregate",
    "SpanStore",
    "TRACE_FORMAT",
    "TraceConfig",
    "Tracer",
    "build_manifest",
    "cache_summary",
    "canonical_events",
    "clean_request_id",
    "cumulative_view",
    "digest_file",
    "digest_inputs",
    "get_flight_recorder",
    "get_registry",
    "get_tracer",
    "load_manifest",
    "new_request_id",
    "parse_prometheus",
    "read_flight_events",
    "read_trace_events",
    "render_prometheus",
    "render_prometheus_snapshot",
    "route_trace_id",
    "set_flight_recorder",
    "set_registry",
    "set_tracer",
    "summarize_events",
    "timed_iter",
    "use_flight_recorder",
    "use_registry",
    "use_tracer",
    "write_manifest",
    "write_trace_file",
]
