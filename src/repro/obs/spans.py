"""Nested phase timers ("spans") with wall- and CPU-time aggregates.

A span names one pipeline phase (``parse``, ``verify``); nesting builds
slash-separated paths (``parse/RIPE/lex``, ``verify/worker``).  The store
keeps only *aggregates* per path — count, total wall seconds, total CPU
seconds — never individual events, so memory stays flat over arbitrarily
long runs, mirroring :class:`~repro.stats.verification.VerificationStats`.

Wall time is :func:`time.perf_counter`, CPU time is
:func:`time.process_time` (so a multi-second span that mostly waits on I/O
shows a small CPU total — that difference is the point of recording both).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Iterator, TypeVar

__all__ = ["SpanAggregate", "SpanStore", "NULL_SPAN", "timed_iter"]

T = TypeVar("T")


@dataclass(slots=True)
class SpanAggregate:
    """All completions of one span path, folded together."""

    path: str
    count: int = 0
    wall_s: float = 0.0
    cpu_s: float = 0.0

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "count": self.count,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
        }


class SpanStore:
    """Aggregates span timings by nested path."""

    def __init__(self) -> None:
        self._stack: list[str] = []
        self._totals: dict[str, SpanAggregate] = {}

    def current_path(self) -> str:
        """The active nesting path, '' at top level."""
        return "/".join(self._stack)

    def add_timing(
        self, path: str, wall_s: float, cpu_s: float = 0.0, count: int = 1
    ) -> None:
        """Fold an externally measured duration into a path's aggregate."""
        aggregate = self._totals.get(path)
        if aggregate is None:
            aggregate = self._totals[path] = SpanAggregate(path)
        aggregate.count += count
        aggregate.wall_s += wall_s
        aggregate.cpu_s += cpu_s

    @contextmanager
    def span(self, name: str):
        """Time a phase; nested calls extend the path with ``/name``."""
        self._stack.append(name)
        path = "/".join(self._stack)
        wall_start = time.perf_counter()
        cpu_start = time.process_time()
        try:
            yield self
        finally:
            wall = time.perf_counter() - wall_start
            cpu = time.process_time() - cpu_start
            self._stack.pop()
            self.add_timing(path, wall, cpu)

    def get(self, path: str) -> SpanAggregate | None:
        return self._totals.get(path)

    def snapshot(self) -> list[dict]:
        """JSON-able aggregates, sorted by path for diffable manifests."""
        return [
            self._totals[path].as_dict() for path in sorted(self._totals)
        ]


class _NullSpan:
    """A reusable no-op context manager for the disabled registry."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False


NULL_SPAN = _NullSpan()


def timed_iter(iterable: Iterable[T], store: SpanStore, name: str) -> Iterator[T]:
    """Attribute an iterable's *production* time to a sub-span.

    Wraps a generator (e.g. the RPSL lexer feeding the object parser) so
    that only the time spent inside ``next()`` is charged to
    ``<current path>/name`` — the consumer's share stays with the enclosing
    span.  Timing is accumulated locally and folded in once on exhaustion,
    so the per-item overhead is two clock reads.
    """
    base = store.current_path()
    path = f"{base}/{name}" if base else name
    iterator = iter(iterable)
    wall = 0.0
    cpu = 0.0
    items = 0
    try:
        while True:
            wall_start = time.perf_counter()
            cpu_start = time.process_time()
            try:
                item = next(iterator)
            except StopIteration:
                return
            finally:
                wall += time.perf_counter() - wall_start
                cpu += time.process_time() - cpu_start
            items += 1
            yield item
    finally:
        store.add_timing(path, wall, cpu, count=max(items, 1))
