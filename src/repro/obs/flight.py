"""The serve flight recorder: a bounded ring of lifecycle events.

The resident daemon (:mod:`repro.serve`) is self-healing — workers are
SIGKILLed and respawned, the breaker opens and closes, journals hot-swap
the index — and after an incident the *sequence* of those transitions is
the diagnosis.  Counters cannot reconstruct it.  A
:class:`FlightRecorder` keeps the last ``capacity`` lifecycle events in
memory at all times, cheap enough to stay on in production:

* events are serialized to compact JSON **at record time** and the ring
  holds only the resulting strings — the same off-the-tracked-heap trick
  as :mod:`repro.obs.trace`, so a busy daemon's ring never grows the
  cyclic-GC workload;
* the ring is a ``deque(maxlen=capacity)``: recording is O(1), old
  events fall off the back, and nothing ever flushes on the hot path;
* on an incident (breaker open, restart budget exhausted, SIGQUIT) the
  whole ring is dumped to a timestamped JSONL file whose first line is a
  header naming the trigger, rate-limited per reason so a flapping
  breaker cannot flood the disk;
* worker processes keep their own small recorder and ship the events of
  each batch back inside the result frame; :meth:`FlightRecorder.absorb`
  splices those pre-serialized lines into the parent ring unmodified.

Every event is ``{"seq", "ts", "type", ...}`` plus an optional ``"id"``
carrying the request correlation id (see docs/observability.md for the
schema).  :data:`NULL_FLIGHT` mirrors the null registry/tracer: a shared
do-nothing recorder, so instrumented code never branches on "is flight
recording enabled".
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
import uuid
from collections import deque
from contextlib import contextmanager
from pathlib import Path

__all__ = [
    "FLIGHT_FORMAT",
    "FlightRecorder",
    "NullFlightRecorder",
    "NULL_FLIGHT",
    "clean_request_id",
    "get_flight_recorder",
    "new_request_id",
    "read_flight_events",
    "set_flight_recorder",
    "use_flight_recorder",
]

FLIGHT_FORMAT = "rpslyzer-flight/1"

# Client-supplied request ids are propagated verbatim only when they are
# plain header-safe tokens; anything else is replaced with a fresh id so
# log lines and WHOIS comments stay single-line and unambiguous.
_ID_SAFE = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_.:/+="
)
MAX_REQUEST_ID_LEN = 128


# Request ids are minted on the serve hot path, where uuid4's two
# microseconds of os.urandom per call are real money: a random 16-hex
# process prefix plus a 16-hex counter keeps the 32-hex shape and the
# per-process uniqueness at ~10x less cost.  (Forked workers inherit the
# prefix but never mint request ids — ids arrive with the batch items.)
_ID_PREFIX = uuid.uuid4().hex[:16]
_id_counter = itertools.count(int.from_bytes(os.urandom(4), "big"))


def new_request_id() -> str:
    """A fresh correlation id (32 hex chars, collision-safe in practice)."""
    return "%s%016x" % (_ID_PREFIX, next(_id_counter))


def clean_request_id(raw: str | None) -> str | None:
    """A client-supplied id, validated — or None when unusable.

    Accepts 1..``MAX_REQUEST_ID_LEN`` characters drawn from the
    URL/header-safe token alphabet; everything else (empty, overlong,
    embedded whitespace or quotes) is rejected so the caller generates a
    fresh id instead of propagating something unprintable.
    """
    if not raw:
        return None
    candidate = raw.strip()
    if not candidate or len(candidate) > MAX_REQUEST_ID_LEN:
        return None
    if not all(ch in _ID_SAFE for ch in candidate):
        return None
    return candidate


class FlightRecorder:
    """An always-on bounded ring of serve lifecycle events.

    ``capacity`` bounds the ring; ``incident_dir`` is where incident
    dumps land (defaults to the working directory).  Recording is
    thread-safe — events arrive from the event loop, batch executor
    threads, and the supervisor's monitor thread.
    """

    enabled = True

    def __init__(
        self,
        capacity: int = 2048,
        *,
        incident_dir: str | Path | None = None,
        incident_interval: float = 30.0,
    ):
        if capacity < 1:
            raise ValueError("FlightRecorder capacity must be >= 1")
        self.capacity = capacity
        self.incident_dir = Path(incident_dir) if incident_dir else None
        self.incident_interval = incident_interval
        self._ring: deque[str] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0
        self.recorded = 0
        self.absorbed = 0
        self.incidents = 0
        self._last_incident: dict[str, float] = {}

    # -- recording ----------------------------------------------------------

    def record(self, event_type: str, request_id: str | None = None, **fields) -> None:
        """Record one event; serialized immediately, held as a string."""
        event = {"ts": round(time.time(), 6), "type": event_type}
        if request_id:
            event["id"] = request_id
        if fields:
            event.update(fields)
        # Serialize outside the lock; only the seq stamp and append need it.
        line = json.dumps(event, separators=(",", ":"), sort_keys=True, default=str)
        with self._lock:
            self._seq += 1
            self.recorded += 1
            # Splice the seq in front without re-serializing the payload.
            self._ring.append('{"seq":%d,%s' % (self._seq, line[1:]))

    def splice(self, line: str) -> None:
        """Append one pre-serialized event line — the zero-JSON hot path.

        The serve core serializes each request's access-log line exactly
        once and splices the same string here, so a finished request
        costs the ring a lock and a deque append, nothing more.
        """
        with self._lock:
            self._ring.append(line)
            self.absorbed += 1

    def absorb(self, lines) -> None:
        """Splice pre-serialized event lines (a worker's batch) into the ring.

        Lines are appended as-is — workers stamp their own ``worker``/
        ``pid`` fields and their seq numbers are local to the worker —
        so absorption costs one deque append per line, no JSON work.
        """
        with self._lock:
            for line in lines:
                if isinstance(line, str) and line.startswith("{"):
                    self._ring.append(line)
                    self.absorbed += 1

    def drain_lines(self) -> list[str]:
        """Pop every buffered line (worker side: ship with the result frame)."""
        with self._lock:
            lines = list(self._ring)
            self._ring.clear()
            return lines

    # -- inspection ---------------------------------------------------------

    def snapshot_lines(self) -> list[str]:
        with self._lock:
            return list(self._ring)

    def events(
        self,
        *,
        request_id: str | None = None,
        types=None,
        since: float | None = None,
        until: float | None = None,
        limit: int | None = None,
    ) -> list[dict]:
        """Decoded ring events, oldest first, optionally filtered.

        ``types`` is an iterable of event type names; ``since``/``until``
        bound the wall-clock ``ts``; ``limit`` keeps the *newest* N
        matches (the interesting end of an incident).
        """
        wanted = frozenset(types) if types else None
        matched: list[dict] = []
        for line in self.snapshot_lines():
            try:
                event = json.loads(line)
            except ValueError:  # pragma: no cover - absorb() filters junk
                continue
            if request_id is not None and event.get("id") != request_id:
                continue
            if wanted is not None and event.get("type") not in wanted:
                continue
            ts = event.get("ts", 0.0)
            if since is not None and ts < since:
                continue
            if until is not None and ts > until:
                continue
            matched.append(event)
        if limit is not None and limit > 0:
            matched = matched[-limit:]
        return matched

    def stats(self) -> dict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "events": len(self._ring),
                "recorded": self.recorded,
                "absorbed": self.absorbed,
                "incidents": self.incidents,
            }

    # -- incident dumps ------------------------------------------------------

    def dump(self, destination) -> None:
        """Write header + every ring line to an open text stream."""
        header = {
            "format": FLIGHT_FORMAT,
            "ts": round(time.time(), 6),
            "pid": os.getpid(),
        }
        destination.write(json.dumps(header, sort_keys=True) + "\n")
        for line in self.snapshot_lines():
            destination.write(line + "\n")

    def dump_incident(
        self, reason: str, trigger: dict | None = None
    ) -> Path | None:
        """Dump the ring to a timestamped incident file; returns its path.

        The first line is a header (``format``, ``reason``, ``ts``,
        ``pid``, and the ``trigger`` event that caused the dump); the
        rest is the ring, oldest first.  Dumps for the same reason are
        rate-limited to one per ``incident_interval`` seconds — a breaker
        flapping under sustained overload must not fill the disk —
        in which case None is returned.
        """
        now = time.monotonic()
        with self._lock:
            last = self._last_incident.get(reason)
            if last is not None and now - last < self.incident_interval:
                return None
            self._last_incident[reason] = now
        self.record("incident-dump", reason=reason)
        directory = self.incident_dir or Path.cwd()
        try:
            directory.mkdir(parents=True, exist_ok=True)
            stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
            path = directory / f"flight-{stamp}-{reason}-{os.getpid()}.jsonl"
            header = {
                "format": FLIGHT_FORMAT,
                "reason": reason,
                "ts": round(time.time(), 6),
                "pid": os.getpid(),
                "trigger": trigger,
            }
            with open(path, "w", encoding="utf-8") as stream:
                stream.write(json.dumps(header, sort_keys=True, default=str) + "\n")
                for line in self.snapshot_lines():
                    stream.write(line + "\n")
        except OSError:  # the dump is best-effort; never take serving down
            return None
        with self._lock:
            self.incidents += 1
        return path


class NullFlightRecorder(FlightRecorder):
    """The disabled recorder: every operation is a no-op."""

    enabled = False

    def __init__(self):
        super().__init__(capacity=1)

    def record(self, event_type, request_id=None, **fields):
        pass

    def splice(self, line):
        pass

    def absorb(self, lines):
        pass

    def dump_incident(self, reason, trigger=None):
        return None


NULL_FLIGHT = NullFlightRecorder()

_current: FlightRecorder = NULL_FLIGHT


def get_flight_recorder() -> FlightRecorder:
    """The recorder instrumented serve code should report to right now."""
    return _current


def set_flight_recorder(recorder: FlightRecorder | None) -> FlightRecorder:
    """Install ``recorder`` (None restores the null one); returns the
    previously installed one so callers can restore it."""
    global _current
    previous = _current
    _current = recorder if recorder is not None else NULL_FLIGHT
    return previous


@contextmanager
def use_flight_recorder(recorder: FlightRecorder | None = None):
    """Temporarily install a recorder (a fresh one if none is given)."""
    if recorder is None:
        recorder = FlightRecorder()
    previous = set_flight_recorder(recorder)
    try:
        yield recorder
    finally:
        set_flight_recorder(previous)


def read_flight_events(path: str | Path) -> tuple[dict, list[dict]]:
    """Read an incident/flight dump back: ``(header, events)``.

    Tolerates a truncated final line (the process died mid-write) the
    way :func:`repro.obs.trace.read_trace_events` does; raises
    ``ValueError`` when the header is missing or of an unknown format.
    """
    header: dict | None = None
    events: list[dict] = []
    with open(path, encoding="utf-8") as stream:
        for raw in stream:
            line = raw.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # truncated tail from a dying process
            if header is None:
                header = record
                if header.get("format") != FLIGHT_FORMAT:
                    raise ValueError(
                        f"not a flight recording: format={header.get('format')!r}"
                    )
                continue
            events.append(record)
    if header is None:
        raise ValueError(f"empty flight recording: {path}")
    return header, events
