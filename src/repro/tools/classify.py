"""Classifying ASes by RPSL usage — another future-work item of the paper.

Archetypes, from least to most engaged:

* ``silent`` — no aut-num object at all;
* ``ghost`` — an aut-num with zero rules;
* ``provider-mandated`` — rules reference only (apparent) providers,
  the pattern left behind when an upstream requires IRR entries;
* ``minimal`` — a handful of simple rules (≤ ``minimal_rules``);
* ``documented`` — broad, simple policies over many neighbors;
* ``power-user`` — uses compound machinery: structured policies,
  AS-path regexes, communities, filter-sets, or actions.

The classifier is feature-based (no relationships needed, though they
sharpen ``provider-mandated``); :func:`classify_ir` returns the archetype
per ASN plus a census.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.bgp.topology import AsRelationships
from repro.ir.model import AutNum, Ir
from repro.rpsl.filter import FilterAsPathRegex, FilterCommunity, FilterFltrSetRef
from repro.rpsl.peering import PeerAsn
from repro.rpsl.policy import PolicyTerm
from repro.rpsl.walk import (
    iter_as_expr_nodes,
    iter_filter_nodes,
    iter_policy_factors,
    iter_peerings,
)

__all__ = ["UsageFeatures", "classify_as", "classify_ir", "ARCHETYPES"]

ARCHETYPES = (
    "silent",
    "ghost",
    "provider-mandated",
    "minimal",
    "documented",
    "power-user",
)


@dataclass(frozen=True, slots=True)
class UsageFeatures:
    """Measured features of one aut-num's policies."""

    rule_count: int
    neighbor_count: int
    uses_structured: bool
    uses_regex: bool
    uses_community: bool
    uses_filter_set: bool
    uses_actions: bool


def extract_features(aut_num: AutNum) -> UsageFeatures:
    """Compute usage features for one aut-num."""
    uses_structured = False
    uses_regex = False
    uses_community = False
    uses_filter_set = False
    uses_actions = False
    neighbors: set[int] = set()
    for rule in (*aut_num.imports, *aut_num.exports):
        if not isinstance(rule.expr, PolicyTerm) or rule.expr.braced:
            uses_structured = True
        for peering in iter_peerings(rule.expr):
            for node in iter_as_expr_nodes(peering.as_expr):
                if isinstance(node, PeerAsn):
                    neighbors.add(node.asn)
        for factor in iter_policy_factors(rule.expr):
            if any(action for pa in factor.peerings for action in pa.actions):
                uses_actions = True
            for node in iter_filter_nodes(factor.filter):
                if isinstance(node, FilterAsPathRegex):
                    uses_regex = True
                elif isinstance(node, FilterCommunity):
                    uses_community = True
                elif isinstance(node, FilterFltrSetRef):
                    uses_filter_set = True
    return UsageFeatures(
        rule_count=aut_num.rule_count,
        neighbor_count=len(neighbors),
        uses_structured=uses_structured,
        uses_regex=uses_regex,
        uses_community=uses_community,
        uses_filter_set=uses_filter_set,
        uses_actions=uses_actions,
    )


def classify_as(
    aut_num: AutNum | None,
    relationships: AsRelationships | None = None,
    minimal_rules: int = 4,
) -> str:
    """Classify one AS (None aut-num = absent from the IRRs)."""
    if aut_num is None:
        return "silent"
    if aut_num.rule_count == 0:
        return "ghost"
    features = extract_features(aut_num)
    if features.uses_structured or features.uses_regex or features.uses_community or features.uses_filter_set:
        return "power-user"
    if relationships is not None:
        providers = relationships.providers.get(aut_num.asn, set())
        has_others = bool(
            relationships.customers.get(aut_num.asn)
            or relationships.peers.get(aut_num.asn)
        )
        referenced: set[int] = set()
        for rule in (*aut_num.imports, *aut_num.exports):
            for peering in iter_peerings(rule.expr):
                for node in iter_as_expr_nodes(peering.as_expr):
                    if isinstance(node, PeerAsn):
                        referenced.add(node.asn)
        if referenced and referenced <= providers and has_others:
            return "provider-mandated"
    if features.rule_count <= minimal_rules:
        return "minimal"
    return "documented"


def classify_ir(
    ir: Ir,
    all_asns: set[int] | None = None,
    relationships: AsRelationships | None = None,
) -> tuple[dict[int, str], Counter]:
    """Classify every AS; ``all_asns`` adds the silent ones.

    Returns ``(archetype per ASN, archetype census)``.
    """
    universe = set(ir.aut_nums)
    if all_asns is not None:
        universe |= all_asns
    labels: dict[int, str] = {}
    census: Counter = Counter()
    for asn in sorted(universe):
        label = classify_as(ir.aut_nums.get(asn), relationships)
        labels[asn] = label
        census[label] += 1
    return labels, census
