"""Higher-level tooling built on the IR — the paper's future-work items.

* :mod:`repro.tools.lint` — an RPSL linter (misuse, hygiene, and
  consistency checks drawn from Sections 4–5);
* :mod:`repro.tools.asrel` — AS-relationship inference from declared
  policies;
* :mod:`repro.tools.classify` — classifying ASes by RPSL usage archetype.
"""

from repro.tools.asrel import infer_relationships, score_inference
from repro.tools.classify import classify_as, classify_ir
from repro.tools.lint import LintFinding, LintReport, Severity, lint_ir
from repro.tools.recommend import (
    RouteSetRecommendation,
    apply_recommendation,
    recommend_route_set,
)
from repro.tools.siblings import SiblingGroup, sibling_groups, siblings_of

__all__ = [
    "RouteSetRecommendation",
    "apply_recommendation",
    "recommend_route_set",
    "LintFinding",
    "LintReport",
    "Severity",
    "SiblingGroup",
    "classify_as",
    "classify_ir",
    "infer_relationships",
    "lint_ir",
    "score_inference",
    "sibling_groups",
    "siblings_of",
]
