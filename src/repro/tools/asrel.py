"""AS-relationship inference from RPSL policies.

The paper's conclusion lists "AS-relationship inference" as a natural
application of RPSL data.  Declared policies encode relationships almost
directly [Gao 2001, Siganos & Faloutsos 2004]:

* importing ``ANY`` from a neighbor ⇒ the neighbor is a **provider**
  (only providers give you the full table);
* exporting ``ANY`` to a neighbor ⇒ the neighbor is a **customer**;
* exporting only your own cone (self ASN, customer as-set, route-set)
  while importing only the neighbor's cone ⇒ **peer**-shaped exchange.

Evidence from both endpoints is accumulated per link and the
highest-scoring relationship wins; symmetric transit evidence (each side
calling the other customer) cancels out to *unknown*.  On synthetic worlds
the ground truth is known, so :func:`score_inference` reports
precision/recall per relationship class — the evaluation the paper
suggests but leaves to future work.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.bgp.topology import AsRelationships, Rel
from repro.ir.model import Ir
from repro.rpsl.filter import Filter, FilterAny, FilterAsn, FilterAsSet, FilterRouteSet
from repro.rpsl.peering import PeerAsn
from repro.rpsl.walk import iter_as_expr_nodes, iter_policy_factors

__all__ = ["infer_relationships", "score_inference", "InferenceScore"]

# Evidence weights: importing ANY is the strongest provider signal.
_W_IMPORT_ANY = 3  # neighbor -> provider of subject
_W_EXPORT_ANY = 3  # neighbor -> customer of subject
_W_CONE_EXCHANGE = 1  # cone-for-cone -> peer


def _filter_is_cone(node: Filter, self_asn: int) -> bool:
    """Whether a filter announces "my cone": self ASN / as-set / route-set."""
    if isinstance(node, FilterAsn):
        return node.asn == self_asn
    return isinstance(node, (FilterAsSet, FilterRouteSet)) and not getattr(
        node, "any_member", False
    )


def infer_relationships(ir: Ir) -> AsRelationships:
    """Infer an :class:`AsRelationships` from declared policies.

    Only links with at least one policy signal appear; contradictory
    transit evidence yields no edge.  ``tier1`` is left for the caller
    (:meth:`AsRelationships.infer_tier1`).
    """
    # score[(a, b)]: positive -> b is a's provider; negative -> customer.
    transit_score: dict[tuple[int, int], int] = defaultdict(int)
    peer_score: dict[tuple[int, int], int] = defaultdict(int)

    for aut_num in ir.aut_nums.values():
        subject = aut_num.asn
        for rule in (*aut_num.imports, *aut_num.exports):
            for factor in iter_policy_factors(rule.expr):
                neighbors = {
                    node.asn
                    for peering_action in factor.peerings
                    for node in iter_as_expr_nodes(peering_action.peering.as_expr)
                    if isinstance(node, PeerAsn)
                }
                for neighbor in neighbors:
                    if neighbor == subject:
                        continue
                    link = (subject, neighbor)
                    if isinstance(factor.filter, FilterAny):
                        if rule.kind == "import":
                            transit_score[link] += _W_IMPORT_ANY
                        else:
                            transit_score[link] -= _W_EXPORT_ANY
                    elif rule.kind == "export" and _filter_is_cone(
                        factor.filter, subject
                    ):
                        peer_score[link] += _W_CONE_EXCHANGE

    inferred = AsRelationships()
    links: set[tuple[int, int]] = set()
    for a, b in list(transit_score) + list(peer_score):
        links.add((min(a, b), max(a, b)))

    for a, b in sorted(links):
        # combine both directions: positive -> b provides transit to a
        score = (
            transit_score.get((a, b), 0)
            - transit_score.get((b, a), 0)
        )
        if score > 0:
            inferred.add_transit(b, a)
        elif score < 0:
            inferred.add_transit(a, b)
        else:
            # no (net) transit signal: fall back to peer evidence
            mutual_cone = peer_score.get((a, b), 0) + peer_score.get((b, a), 0)
            if mutual_cone >= 2 * _W_CONE_EXCHANGE:
                inferred.add_peering(a, b)
    return inferred


@dataclass(frozen=True, slots=True)
class InferenceScore:
    """Precision/recall of inferred relationships against ground truth."""

    links_truth: int
    links_inferred: int
    links_correct: int
    transit_precision: float
    transit_recall: float
    peer_precision: float
    peer_recall: float

    def as_dict(self) -> dict[str, float | int]:
        """Plain-dict view for report printing."""
        return {
            "links in ground truth": self.links_truth,
            "links inferred": self.links_inferred,
            "links correct": self.links_correct,
            "transit precision": round(self.transit_precision, 4),
            "transit recall": round(self.transit_recall, 4),
            "peer precision": round(self.peer_precision, 4),
            "peer recall": round(self.peer_recall, 4),
        }


def _link_class(rel: AsRelationships, a: int, b: int) -> str | None:
    kind = rel.rel(a, b)
    if kind is None:
        return None
    if kind is Rel.PEER:
        return "peer"
    # normalize to "provider of the lower ASN is X"
    return f"transit:{b if kind is Rel.PROVIDER else a}"


def score_inference(truth: AsRelationships, inferred: AsRelationships) -> InferenceScore:
    """Compare inferred relationships to ground truth, per link."""
    def links_of(rel: AsRelationships) -> set[tuple[int, int]]:
        pairs = set()
        for asn in rel.ases():
            for neighbor in rel.neighbors(asn):
                pairs.add((min(asn, neighbor), max(asn, neighbor)))
        return pairs

    truth_links = links_of(truth)
    inferred_links = links_of(inferred)

    def tally(kind: str) -> tuple[int, int, int]:
        true_positive = relevant = selected = 0
        for a, b in truth_links | inferred_links:
            truth_class = _link_class(truth, a, b)
            inferred_class = _link_class(inferred, a, b)
            is_kind_truth = truth_class is not None and truth_class.startswith(kind)
            is_kind_inferred = (
                inferred_class is not None and inferred_class.startswith(kind)
            )
            relevant += is_kind_truth
            selected += is_kind_inferred
            if is_kind_truth and is_kind_inferred and truth_class == inferred_class:
                true_positive += 1
        return true_positive, relevant, selected

    transit_tp, transit_rel, transit_sel = tally("transit")
    peer_tp, peer_rel, peer_sel = tally("peer")
    correct = sum(
        1
        for a, b in inferred_links & truth_links
        if _link_class(truth, a, b) == _link_class(inferred, a, b)
    )
    return InferenceScore(
        links_truth=len(truth_links),
        links_inferred=len(inferred_links),
        links_correct=correct,
        transit_precision=transit_tp / selected_or_one(transit_sel),
        transit_recall=transit_tp / selected_or_one(transit_rel),
        peer_precision=peer_tp / selected_or_one(peer_sel),
        peer_recall=peer_tp / selected_or_one(peer_rel),
    )


def selected_or_one(value: int) -> int:
    """Guard against zero denominators."""
    return value if value else 1
