"""Route-set migration advisor: the paper's Section 4 recommendation,
operationalized.

The paper recommends operators "adopt RPSL *route-sets* to increase
policy accuracy and reduce maintenance overhead": a route-set names the
exported prefixes directly, replaces fleets of *route* objects, and lets
an AS advertise different prefix sets to different neighbors.  This tool
generates that migration for an AS:

1. collect the prefixes the AS's current export intent covers — its own
   registered routes plus, for transit ASes, its customer cone's;
2. emit a ``RS-<name>`` route-set object holding them;
3. rewrite the AS's export rules whose filters are the export-self /
   as-set indirection patterns to announce the new route-set;
4. return old and new rule text plus the new object, ready to submit.

:func:`apply_recommendation` splices the migration into an IR so tests
(and operators) can check that previously relaxed/unverified exports
verify strictly afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bgp.topology import AsRelationships
from repro.core.query import QueryEngine
from repro.ir.model import Ir, RouteSet
from repro.ir.render import render_route_set
from repro.net.prefix import Prefix, RangeOp
from repro.rpsl.filter import FilterAsn, FilterAsSet, FilterRouteSet
from repro.rpsl.policy import (
    PeeringAction,
    PolicyFactor,
    PolicyRule,
    PolicyTerm,
)

__all__ = ["RouteSetRecommendation", "recommend_route_set", "apply_recommendation"]


@dataclass(frozen=True, slots=True)
class RouteSetRecommendation:
    """A proposed migration for one AS."""

    asn: int
    route_set: RouteSet
    old_rules: tuple[str, ...]  # export rules being replaced (rendered)
    new_rules: tuple[PolicyRule, ...]  # their rewritten forms
    prefixes: tuple[Prefix, ...]

    @property
    def rpsl(self) -> str:
        """The new route-set object as submittable RPSL text."""
        return render_route_set(self.route_set)

    def summary(self) -> str:
        """Human-readable migration summary."""
        lines = [
            f"AS{self.asn}: create {self.route_set.name} with "
            f"{len(self.prefixes)} prefixes, rewrite {len(self.old_rules)} export rule(s):"
        ]
        for old, new in zip(self.old_rules, self.new_rules):
            lines.append(f"  - export: {old}")
            lines.append(f"  + export: {new.to_rpsl()}")
        return "\n".join(lines)


def _is_indirection_filter(node, asn: int) -> bool:
    """Filters the paper flags: self-ASN (export-self) or as-set indirection."""
    if isinstance(node, FilterAsn):
        return True
    if isinstance(node, FilterAsSet) and not node.any_member:
        return True
    return False


def recommend_route_set(
    ir: Ir,
    asn: int,
    query: QueryEngine | None = None,
    relationships: "AsRelationships | None" = None,
) -> RouteSetRecommendation | None:
    """Propose a route-set migration for one AS, or None if not applicable.

    Applicable when the AS has export rules whose filters are an ASN or
    as-set (indirect definitions relying on *route* objects).  With
    ``relationships``, an export-self filter is widened to the customer
    cone — the intent the paper's Export Self relaxation uncovered.
    """
    aut_num = ir.aut_nums.get(asn)
    if aut_num is None:
        return None
    if query is None:
        query = QueryEngine(ir)

    rewritable: list[tuple[int, PolicyRule]] = []
    covered_asns: set[int] = {asn}
    for index, rule in enumerate(aut_num.exports):
        if not isinstance(rule.expr, PolicyTerm):
            continue
        factors = rule.expr.factors
        if not factors or not all(
            _is_indirection_filter(factor.filter, asn) for factor in factors
        ):
            continue
        rewritable.append((index, rule))
        for factor in factors:
            node = factor.filter
            if isinstance(node, FilterAsn):
                covered_asns.add(node.asn)
                if node.asn == asn and relationships is not None:
                    # export-self: the declared intent is self + customers
                    covered_asns.update(relationships.customer_cone(asn))
            elif isinstance(node, FilterAsSet):
                covered_asns.update(query.flatten_as_set(node.name).members)
    if not rewritable:
        return None

    prefixes: set[Prefix] = set()
    for member in covered_asns:
        for key in query.routes.origin_keys(member):
            prefixes.add(Prefix(*key))
    if not prefixes:
        return None

    set_name = f"AS{asn}:RS-EXPORT"
    route_set = RouteSet(
        name=set_name,
        prefix_members=[(prefix, RangeOp()) for prefix in sorted(prefixes)],
        mnt_by=list(aut_num.mnt_by),
        source=aut_num.source,
    )

    new_rules = []
    old_rules = []
    for _, rule in rewritable:
        old_rules.append(rule.to_rpsl())
        new_factors = tuple(
            PolicyFactor(
                peerings=tuple(
                    PeeringAction(pa.peering, pa.actions) for pa in factor.peerings
                ),
                filter=FilterRouteSet(set_name),
            )
            for factor in rule.expr.factors
        )
        new_rules.append(
            PolicyRule(
                kind=rule.kind,
                expr=PolicyTerm(new_factors, braced=rule.expr.braced),
                afis=rule.afis,
                multiprotocol=rule.multiprotocol,
            )
        )
    return RouteSetRecommendation(
        asn=asn,
        route_set=route_set,
        old_rules=tuple(old_rules),
        new_rules=tuple(new_rules),
        prefixes=tuple(sorted(prefixes)),
    )


def apply_recommendation(ir: Ir, recommendation: RouteSetRecommendation) -> None:
    """Splice a migration into an IR in place (for what-if verification)."""
    ir.route_sets[recommendation.route_set.name] = recommendation.route_set
    aut_num = ir.aut_nums[recommendation.asn]
    old_set = set(recommendation.old_rules)
    kept = [rule for rule in aut_num.exports if rule.to_rpsl() not in old_set]
    aut_num.exports = kept + list(recommendation.new_rules)
