"""Sibling-AS identification from registry maintainer data.

The paper's conclusion lists "identification of sibling ASes" among the
modeling problems RPSL data can inform (citing as2org+-style work).  Two
ASes are *sibling candidates* when registry metadata ties them to one
organization; the strongest IRR signal is shared ``mnt-by`` maintainers —
an organization maintains all its aut-num objects with its own maintainer
object.  Supporting signals: shared as-name prefixes and membership in
each other's customer-cone as-sets without a transit edge.

:func:`sibling_groups` clusters aut-nums by maintainer (connected
components over the shared-maintainer graph), with widely shared
"registry default" maintainers excluded by a frequency cutoff.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.ir.model import Ir

__all__ = ["SiblingGroup", "sibling_groups", "siblings_of"]


@dataclass(frozen=True, slots=True)
class SiblingGroup:
    """One inferred organization: its ASNs and the linking maintainers."""

    asns: tuple[int, ...]
    maintainers: tuple[str, ...]

    def __len__(self) -> int:
        return len(self.asns)


def sibling_groups(
    ir: Ir, max_maintainer_spread: int = 50, min_group_size: int = 2
) -> list[SiblingGroup]:
    """Cluster aut-nums sharing maintainers into sibling groups.

    ``max_maintainer_spread`` drops maintainers attached to more aut-nums
    than an organization plausibly owns (registry-operated maintainers
    would otherwise glue everything into one blob) — the same guard
    as2org applies to shared org-ids.
    """
    by_maintainer: dict[str, list[int]] = defaultdict(list)
    for asn, aut_num in ir.aut_nums.items():
        for maintainer in aut_num.mnt_by:
            by_maintainer[maintainer].append(asn)

    # union-find over ASNs linked by usable maintainers
    parent: dict[int, int] = {}

    def find(asn: int) -> int:
        parent.setdefault(asn, asn)
        while parent[asn] != asn:
            parent[asn] = parent[parent[asn]]
            asn = parent[asn]
        return asn

    def union(a: int, b: int) -> None:
        root_a, root_b = find(a), find(b)
        if root_a != root_b:
            parent[root_b] = root_a

    usable: dict[str, list[int]] = {}
    for maintainer, asns in by_maintainer.items():
        if 2 <= len(asns) <= max_maintainer_spread:
            usable[maintainer] = asns
            first = asns[0]
            for other in asns[1:]:
                union(first, other)

    members: dict[int, set[int]] = defaultdict(set)
    for maintainer, asns in usable.items():
        for asn in asns:
            members[find(asn)].add(asn)

    maintainers_of_group: dict[int, set[str]] = defaultdict(set)
    for maintainer, asns in usable.items():
        maintainers_of_group[find(asns[0])].add(maintainer)

    groups = [
        SiblingGroup(
            asns=tuple(sorted(asns)),
            maintainers=tuple(sorted(maintainers_of_group[root])),
        )
        for root, asns in members.items()
        if len(asns) >= min_group_size
    ]
    groups.sort(key=lambda group: (-len(group.asns), group.asns))
    return groups


def siblings_of(ir: Ir, asn: int, **kwargs) -> tuple[int, ...]:
    """The sibling ASNs of one AS (empty when it stands alone)."""
    for group in sibling_groups(ir, **kwargs):
        if asn in group.asns:
            return tuple(other for other in group.asns if other != asn)
    return ()
