"""An RPSL linter: the "further RPSL tooling" the paper calls for.

Each check encodes a finding from Sections 4–5 or the appendices:

====== ========== =====================================================
code   severity   finding
====== ========== =====================================================
RPS001 error      object failed to parse (syntax error)
RPS002 error      invalid set name
RPS003 warning    reserved keyword used as a set name or member
RPS010 warning    empty as-set referenced by policy rules
RPS011 info       single-member as-set (replace by the member)
RPS012 warning    as-set membership contains a loop
RPS013 info       as-set nesting depth ≥ 5
RPS014 info       very large flattened as-set
RPS020 error      rule references an undefined object
RPS021 warning    filter names an AS that originates no route objects
RPS030 warning    export-self: transit AS announces only itself
RPS031 warning    import-customer: ``from AS<C> accept AS<C>``
RPS032 info       only-provider policies (customers/peers undocumented)
RPS040 info       ASN/as-set filter indirection — consider a route-set
RPS041 info       route-set defined but never referenced
RPS050 warning    suspected Pref/LocalPref inversion (Appendix A note)
RPS051 warning    prefix registered with conflicting origins
====== ========== =====================================================

Relationship-aware checks (RPS030–RPS032, RPS050) only run when an
:class:`~repro.bgp.topology.AsRelationships` is supplied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.bgp.topology import AsRelationships, Rel
from repro.core.query import QueryEngine
from repro.ir.model import AutNum, Ir
from repro.rpsl.errors import ErrorCollector, ErrorKind
from repro.rpsl.filter import FilterAsn, FilterAsSet
from repro.rpsl.peering import PeerAsn
from repro.rpsl.walk import (
    iter_as_expr_nodes,
    iter_filter_nodes,
    iter_policy_factors,
)
from repro.stats.routes import multi_origin_prefixes
from repro.stats.usage import reference_census

__all__ = ["Severity", "LintFinding", "LintReport", "lint_ir"]


class Severity(Enum):
    """Finding severity, ordered."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True, slots=True)
class LintFinding:
    """One linter finding, attached to an object."""

    code: str
    severity: Severity
    object_class: str
    object_name: str
    message: str

    def __str__(self) -> str:
        return (
            f"{self.code} [{self.severity.value}] {self.object_class} "
            f"{self.object_name}: {self.message}"
        )


@dataclass(slots=True)
class LintReport:
    """All findings of one lint run."""

    findings: list[LintFinding] = field(default_factory=list)

    def add(
        self,
        code: str,
        severity: Severity,
        object_class: str,
        object_name: str,
        message: str,
    ) -> None:
        """Record one finding."""
        self.findings.append(
            LintFinding(code, severity, object_class, object_name, message)
        )

    def by_code(self, code: str) -> list[LintFinding]:
        """Findings with the given code."""
        return [finding for finding in self.findings if finding.code == code]

    def counts(self) -> dict[str, int]:
        """Finding counts per code."""
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return counts

    def render(self) -> str:
        """Human-readable report text, errors first."""
        order = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}
        ranked = sorted(
            self.findings, key=lambda finding: (order[finding.severity], finding.code)
        )
        return "\n".join(str(finding) for finding in ranked)

    def __len__(self) -> int:
        return len(self.findings)


_ERROR_KIND_CODES = {
    ErrorKind.SYNTAX: "RPS001",
    ErrorKind.INVALID_PREFIX: "RPS001",
    ErrorKind.INVALID_ASN: "RPS001",
    ErrorKind.INVALID_AS_SET_NAME: "RPS002",
    ErrorKind.INVALID_ROUTE_SET_NAME: "RPS002",
    ErrorKind.INVALID_PEERING_SET_NAME: "RPS002",
    ErrorKind.INVALID_FILTER_SET_NAME: "RPS002",
    ErrorKind.RESERVED_NAME: "RPS003",
    ErrorKind.UNKNOWN_CLASS: "RPS001",
}

_SEVERITY_BY_CODE = {"RPS001": Severity.ERROR, "RPS002": Severity.ERROR, "RPS003": Severity.WARNING}


def lint_ir(
    ir: Ir,
    errors: ErrorCollector | None = None,
    relationships: AsRelationships | None = None,
    huge_threshold: int = 10000,
    deep_threshold: int = 5,
) -> LintReport:
    """Lint a (merged) IR; see the module docstring for the check table."""
    report = LintReport()
    query = QueryEngine(ir)
    census = reference_census(ir)

    if errors is not None:
        for issue in errors.issues:
            code = _ERROR_KIND_CODES.get(issue.kind, "RPS001")
            report.add(
                code,
                _SEVERITY_BY_CODE[code],
                issue.object_class,
                issue.object_name,
                issue.message,
            )

    _lint_as_sets(ir, query, census, report, huge_threshold, deep_threshold)
    _lint_references(ir, census, query, report)
    _lint_filters(ir, census, report)
    _lint_multi_origin(ir, report)
    if relationships is not None:
        for aut_num in ir.aut_nums.values():
            _lint_policies(aut_num, relationships, report)
    return report


def _lint_as_sets(ir, query, census, report, huge_threshold, deep_threshold) -> None:
    referenced = census.referenced_overall.get("as-set", set())
    for name, as_set in ir.as_sets.items():
        if as_set.member_count == 0 and not as_set.contains_any:
            severity = Severity.WARNING if name in referenced else Severity.INFO
            report.add(
                "RPS010", severity, "as-set", name,
                "empty as-set" + (" referenced in policy rules" if name in referenced else ""),
            )
        elif as_set.member_count == 1 and not as_set.contains_any:
            report.add(
                "RPS011", Severity.INFO, "as-set", name,
                "single-member set could be replaced by its member",
            )
        resolution = query.flatten_as_set(name)
        if resolution.has_loop:
            report.add(
                "RPS012", Severity.WARNING, "as-set", name,
                "set membership forms a loop",
            )
        if resolution.depth >= deep_threshold:
            report.add(
                "RPS013", Severity.INFO, "as-set", name,
                f"nesting depth {resolution.depth} (≥ {deep_threshold})",
            )
        if len(resolution.members) > huge_threshold:
            report.add(
                "RPS014", Severity.INFO, "as-set", name,
                f"{len(resolution.members)} flattened members (> {huge_threshold})",
            )


def _lint_references(ir, census, query, report) -> None:
    for cls, dangling in census.dangling.items():
        for key in sorted(dangling, key=str):
            if cls == "aut-num":
                # A filter/peering naming an AS with no aut-num is only an
                # issue for filters if the AS also originates nothing.
                if query.has_any_routes(key):
                    continue
                report.add(
                    "RPS021", Severity.WARNING, "aut-num", f"AS{key}",
                    "referenced AS has no aut-num and originates no route objects",
                )
            else:
                report.add(
                    "RPS020", Severity.ERROR, cls, str(key),
                    f"rule references undefined {cls}",
                )
    # route-sets defined but never used anywhere
    used = census.referenced_overall.get("route-set", set())
    for name in sorted(set(ir.route_sets) - used):
        report.add(
            "RPS041", Severity.INFO, "route-set", name,
            "route-set defined but never referenced by a rule",
        )


def _lint_filters(ir, census, report) -> None:
    for aut_num in ir.aut_nums.values():
        indirect = 0
        for rule in (*aut_num.imports, *aut_num.exports):
            for factor in iter_policy_factors(rule.expr):
                if isinstance(factor.filter, (FilterAsn, FilterAsSet)):
                    indirect += 1
        if indirect:
            report.add(
                "RPS040", Severity.INFO, "aut-num", f"AS{aut_num.asn}",
                f"{indirect} filter(s) use ASN/as-set indirection; route-sets "
                "specify prefixes directly and avoid stale route objects",
            )


def _lint_multi_origin(ir, report) -> None:
    for prefix, origins in sorted(multi_origin_prefixes(ir).items()):
        listed = ", ".join(f"AS{asn}" for asn in sorted(origins))
        report.add(
            "RPS051", Severity.WARNING, "route", str(prefix),
            f"registered with conflicting origins: {listed}",
        )


def _lint_policies(aut_num: AutNum, relationships: AsRelationships, report) -> None:
    asn = aut_num.asn
    is_transit = bool(relationships.customers.get(asn))
    referenced: set[int] = set()
    customer_prefs: list[int] = []
    provider_prefs: list[int] = []

    for rule in (*aut_num.imports, *aut_num.exports):
        for factor in iter_policy_factors(rule.expr):
            for peering_action in factor.peerings:
                peer_asns = [
                    node.asn
                    for node in iter_as_expr_nodes(peering_action.peering.as_expr)
                    if isinstance(node, PeerAsn)
                ]
                referenced.update(peer_asns)
                pref = _pref_of(peering_action.actions)
                if pref is not None and len(peer_asns) == 1:
                    remote_rel = relationships.rel(asn, peer_asns[0])
                    if rule.kind == "import" and remote_rel is Rel.CUSTOMER:
                        customer_prefs.append(pref)
                    elif rule.kind == "import" and remote_rel is Rel.PROVIDER:
                        provider_prefs.append(pref)
                # RPS030: export-self by a transit AS toward a provider/peer
                if (
                    rule.kind == "export"
                    and is_transit
                    and isinstance(factor.filter, FilterAsn)
                    and factor.filter.asn == asn
                    and len(peer_asns) == 1
                    and relationships.rel(asn, peer_asns[0]) in (Rel.PROVIDER, Rel.PEER)
                ):
                    report.add(
                        "RPS030", Severity.WARNING, "aut-num", f"AS{asn}",
                        f"transit AS announces only itself to AS{peer_asns[0]}; "
                        "customer routes are implicitly leaked past the filter "
                        "— announce the customer set or a route-set instead",
                    )
                # RPS031: from AS<C> accept AS<C> on a customer
                if (
                    rule.kind == "import"
                    and isinstance(factor.filter, FilterAsn)
                    and len(peer_asns) == 1
                    and factor.filter.asn == peer_asns[0]
                    and relationships.rel(asn, peer_asns[0]) is Rel.CUSTOMER
                ):
                    report.add(
                        "RPS031", Severity.WARNING, "aut-num", f"AS{asn}",
                        f"'from AS{peer_asns[0]} accept AS{peer_asns[0]}' only "
                        "admits the customer's own originations; accept its "
                        "customer set (or ANY) if transit is intended",
                    )

    providers = relationships.providers.get(asn, set())
    if referenced and referenced <= providers and (
        relationships.customers.get(asn) or relationships.peers.get(asn)
    ):
        report.add(
            "RPS032", Severity.INFO, "aut-num", f"AS{asn}",
            "policies cover only providers; customers and peers are undocumented",
        )

    # RPS050: RPSL Pref is inverted LocalPref (lower = preferred).  An AS
    # assigning customers *higher* pref than providers most likely meant
    # LocalPref semantics.
    if customer_prefs and provider_prefs:
        if min(customer_prefs) > max(provider_prefs):
            report.add(
                "RPS050", Severity.WARNING, "aut-num", f"AS{asn}",
                f"customer imports get pref {customer_prefs} > provider imports "
                f"{provider_prefs}; RPSL pref is LOWER-is-preferred (LocalPref "
                "≡ 65535 − pref) — this likely inverts the intended preference",
            )


def _pref_of(actions) -> int | None:
    for action in actions:
        if action.attribute == "pref" and action.values:
            try:
                return int(action.values[0])
            except ValueError:
                return None
    return None
