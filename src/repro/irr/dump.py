"""Reading RPSL dump files into the IR.

A dump file is the standard flat-text serialization IRRs publish (e.g.
``ripe.db.gz`` uncompressed): RPSL paragraphs separated by blank lines.
"""

from __future__ import annotations

import io
from pathlib import Path

from repro.ir.model import Ir
from repro.rpsl.errors import ErrorCollector
from repro.rpsl.lexer import split_dump
from repro.rpsl.objects import collect_into_ir

__all__ = ["parse_dump_text", "parse_dump_file"]


def parse_dump_text(
    text: str, source: str = "", errors: ErrorCollector | None = None, ir: Ir | None = None
) -> tuple[Ir, ErrorCollector]:
    """Parse an in-memory dump into an IR.

    ``source`` tags every produced object with its registry name; ``ir`` may
    be supplied to accumulate several dumps into one IR.
    """
    if errors is None:
        errors = ErrorCollector()
    ir = collect_into_ir(split_dump(io.StringIO(text)), source, errors, ir)
    return ir, errors


def parse_dump_file(
    path: str | Path,
    source: str = "",
    errors: ErrorCollector | None = None,
    ir: Ir | None = None,
) -> tuple[Ir, ErrorCollector]:
    """Parse a dump file from disk, streaming line by line."""
    if errors is None:
        errors = ErrorCollector()
    source = source or Path(path).stem.upper()
    with open(path, encoding="utf-8", errors="replace") as stream:
        ir = collect_into_ir(split_dump(stream), source, errors, ir)
    return ir, errors
