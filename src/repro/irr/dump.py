"""Reading RPSL dump files into the IR.

A dump file is the standard flat-text serialization IRRs publish (e.g.
``ripe.db.gz`` uncompressed): RPSL paragraphs separated by blank lines.
"""

from __future__ import annotations

import io
from pathlib import Path

from repro.ir.model import Ir
from repro.obs import get_registry, timed_iter
from repro.rpsl.errors import ErrorCollector
from repro.rpsl.lexer import split_dump
from repro.rpsl.objects import collect_into_ir

__all__ = ["parse_dump_text", "parse_dump_file"]


def _collect(stream, source: str, errors: ErrorCollector, ir: Ir | None) -> Ir:
    """Lex and parse one dump; with metrics live, split lex/object time.

    The lexer feeds the object parser through a generator, so their work is
    interleaved; :func:`~repro.obs.timed_iter` charges the generator's
    production time to a ``lex`` sub-span of the enclosing span (the
    registry's ``parse/<irr>``) — the remainder of that span is object and
    policy construction.
    """
    registry = get_registry()
    paragraphs = split_dump(stream)
    if not registry.enabled:
        return collect_into_ir(paragraphs, source, errors, ir)
    before = len(errors)
    paragraphs = timed_iter(paragraphs, registry.spans, "lex")
    ir = collect_into_ir(paragraphs, source, errors, ir)
    registry.counter("parse_errors_total", irr=source or "?").inc(len(errors) - before)
    return ir


def parse_dump_text(
    text: str, source: str = "", errors: ErrorCollector | None = None, ir: Ir | None = None
) -> tuple[Ir, ErrorCollector]:
    """Parse an in-memory dump into an IR.

    ``source`` tags every produced object with its registry name; ``ir`` may
    be supplied to accumulate several dumps into one IR.
    """
    if errors is None:
        errors = ErrorCollector()
    ir = _collect(io.StringIO(text), source, errors, ir)
    return ir, errors


def parse_dump_file(
    path: str | Path,
    source: str = "",
    errors: ErrorCollector | None = None,
    ir: Ir | None = None,
) -> tuple[Ir, ErrorCollector]:
    """Parse a dump file from disk, streaming line by line."""
    if errors is None:
        errors = ErrorCollector()
    source = source or Path(path).stem.upper()
    with open(path, encoding="utf-8", errors="replace") as stream:
        ir = _collect(stream, source, errors, ir)
    return ir, errors
