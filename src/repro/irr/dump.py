"""Reading RPSL dump files into the IR.

A dump file is the standard flat-text serialization IRRs publish: RPSL
paragraphs separated by blank lines.  The paper's Table 1 inputs ship
gzip-compressed (``ripe.db.gz``); :func:`parse_dump_file` opens both the
compressed and the uncompressed form transparently.

File ingestion is hardened against real-world damage (see
``docs/robustness.md``): a dump truncated mid-object drops only the
damaged final paragraph (recorded as a ``TRUNCATED``
:class:`~repro.rpsl.errors.ParseIssue`), a pathologically large object is
dropped as ``OVERSIZED``, and a garbage or corrupt-compressed file yields
whatever parsed before the damage plus an ``UNREADABLE_INPUT`` issue —
never an exception.
"""

from __future__ import annotations

import gzip
import io
import zlib
from pathlib import Path
from typing import IO, Iterator

from repro.ir.model import Ir
from repro.obs import get_registry, timed_iter
from repro.rpsl.errors import ErrorCollector, ErrorKind
from repro.rpsl.lexer import LexLimits, split_dump
from repro.rpsl.objects import collect_into_ir

__all__ = ["parse_dump_text", "parse_dump_file"]

_GZIP_MAGIC = b"\x1f\x8b"


def _collect(
    stream,
    source: str,
    errors: ErrorCollector,
    ir: Ir | None,
    limits: LexLimits | None = None,
    detect_truncation: bool = False,
) -> Ir:
    """Lex and parse one dump; with metrics live, split lex/object time.

    The lexer feeds the object parser through a generator, so their work is
    interleaved; :func:`~repro.obs.timed_iter` charges the generator's
    production time to a ``lex`` sub-span of the enclosing span (the
    registry's ``parse/<irr>``) — the remainder of that span is object and
    policy construction.
    """
    registry = get_registry()
    paragraphs = split_dump(stream, limits=limits, detect_truncation=detect_truncation)
    if not registry.enabled:
        return collect_into_ir(paragraphs, source, errors, ir)
    before = len(errors)
    paragraphs = timed_iter(paragraphs, registry.spans, "lex")
    ir = collect_into_ir(paragraphs, source, errors, ir)
    registry.counter("parse_errors_total", irr=source or "?").inc(len(errors) - before)
    return ir


def parse_dump_text(
    text: str,
    source: str = "",
    errors: ErrorCollector | None = None,
    ir: Ir | None = None,
    limits: LexLimits | None = None,
) -> tuple[Ir, ErrorCollector]:
    """Parse an in-memory dump into an IR.

    ``source`` tags every produced object with its registry name; ``ir`` may
    be supplied to accumulate several dumps into one IR.  In-memory text is
    trusted to be complete, so truncation detection stays off (a missing
    trailing newline in a Python string is a formatting quirk, not damage).
    """
    if errors is None:
        errors = ErrorCollector()
    ir = _collect(io.StringIO(text), source, errors, ir, limits=limits)
    return ir, errors


def _is_gzip(path: Path) -> bool:
    if path.suffix == ".gz":
        return True
    try:
        with open(path, "rb") as probe:
            return probe.read(2) == _GZIP_MAGIC
    except OSError:
        return False


def _open_dump(path: Path) -> IO[str]:
    """Open a dump for text reading, decompressing gzip transparently."""
    if _is_gzip(path):
        return gzip.open(path, "rt", encoding="utf-8", errors="replace")
    return open(path, encoding="utf-8", errors="replace")


def _resilient_lines(
    stream: IO[str], source: str, name: str, errors: ErrorCollector
) -> Iterator[str]:
    """Yield lines, converting read-time failures into a recorded issue.

    Corrupt-compressed input raises mid-iteration (``BadGzipFile``,
    ``EOFError``, zlib errors surfacing as ``OSError``); whatever
    decompressed and parsed before the damage is kept, the failure is
    recorded as ``UNREADABLE_INPUT``, and iteration ends cleanly.
    """
    try:
        yield from stream
    except (OSError, EOFError, UnicodeError, zlib.error) as exc:
        errors.record(
            ErrorKind.UNREADABLE_INPUT,
            "dump",
            name,
            source,
            f"unreadable input, kept what parsed before the damage: {exc}",
        )


def parse_dump_file(
    path: str | Path,
    source: str = "",
    errors: ErrorCollector | None = None,
    ir: Ir | None = None,
    limits: LexLimits | None = None,
) -> tuple[Ir, ErrorCollector]:
    """Parse a dump file from disk, streaming line by line.

    ``.gz`` dumps (by suffix or magic bytes) are decompressed on the fly.
    Unreadable files — garbage where gzip data should be, undecodable
    bytes, I/O errors mid-read — record an ``UNREADABLE_INPUT`` issue and
    return whatever parsed up to the damage instead of raising.
    """
    if errors is None:
        errors = ErrorCollector()
    path = Path(path)
    name = path.name
    source = source or name.removesuffix(".gz").rsplit(".", 1)[0].upper()
    try:
        stream = _open_dump(path)
    except OSError as exc:
        errors.record(
            ErrorKind.UNREADABLE_INPUT, "dump", name, source, f"cannot open: {exc}"
        )
        return (ir if ir is not None else Ir()), errors
    with stream:
        lines = _resilient_lines(stream, source, name, errors)
        ir = _collect(lines, source, errors, ir, limits=limits, detect_truncation=True)
    return ir, errors
