"""The IRR substrate: dump files, the 13-registry model, and synthesis."""

from repro.irr.dump import parse_dump_file, parse_dump_text
from repro.irr.journal import (
    Journal,
    JournalEntry,
    JournalError,
    apply_journal_to_ir,
    journal_between,
    load_journal,
    save_journal,
)
from repro.irr.registry import IrrSource, Registry, parse_registry_dir

__all__ = [
    "IrrSource",
    "Journal",
    "JournalEntry",
    "JournalError",
    "Registry",
    "apply_journal_to_ir",
    "journal_between",
    "load_journal",
    "parse_dump_file",
    "parse_dump_text",
    "parse_registry_dir",
    "save_journal",
]
