"""The IRR substrate: dump files, the 13-registry model, and synthesis."""

from repro.irr.dump import parse_dump_file, parse_dump_text
from repro.irr.registry import IrrSource, Registry, parse_registry_dir

__all__ = [
    "IrrSource",
    "Registry",
    "parse_dump_file",
    "parse_dump_text",
    "parse_registry_dir",
]
