"""Synthetic Internet and IRR generator.

The paper ingests 6.9 GiB of IRR dumps and 779 M collector routes; offline,
this module builds the equivalent world from scratch:

1. a tiered AS topology (Tier-1 clique, transit tiers, stubs) with
   provider/customer and peer links — the ground truth that stands in for
   CAIDA's relationship database;
2. prefix allocations per AS (IPv4 everywhere, IPv6 for a fraction);
3. RPSL *text* dumps for the paper's 13 IRRs, with every AS's policies
   generated according to an *operator profile* that injects, at the
   paper's observed rates, the behaviours Sections 4–5 measure: absent
   aut-nums, rule-less aut-nums, export-self and import-customer misuse,
   only-provider policies, missing/stale/multi-origin route objects,
   compound rules (REFINE, AS-path regexes, communities), recursive and
   looping as-sets, and outright syntax errors.

Everything the parser sees is real RPSL text, so the full pipeline —
lexer → expression grammars → IR → merge → verification — is exercised
exactly as with a real dump.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from pathlib import Path

from repro.bgp.routegen import Collector, default_collectors
from repro.bgp.topology import AsRelationships
from repro.ir.model import Ir
from repro.irr.registry import Registry
from repro.net.prefix import Prefix

__all__ = ["SynthConfig", "SynthWorld", "build_world", "tiny_config", "default_config"]

# Relative aut-num weights per IRR, shaped after Table 1 of the paper.
_IRR_WEIGHTS: tuple[tuple[str, float], ...] = (
    ("RIPE", 38573),
    ("APNIC", 20680),
    ("RADB", 9471),
    ("TC", 4205),
    ("ARIN", 3047),
    ("AFRINIC", 2314),
    ("IDNIC", 2276),
    ("LACNIC", 1847),
    ("ALTDB", 1680),
    ("NTTCOM", 549),
    ("JPIRR", 455),
    ("LEVEL3", 300),
    ("REACH", 2),
)

IRR_NAMES: tuple[str, ...] = tuple(name for name, _ in _IRR_WEIGHTS)


@dataclass(frozen=True, slots=True)
class SynthConfig:
    """All generation knobs; defaults approximate the paper's shapes."""

    seed: int = 42
    # topology scale
    n_tier1: int = 8
    n_tier2: int = 50
    n_tier3: int = 180
    n_stub: int = 700
    # operator profiles (fractions of all ASes)
    p_absent_aut_num: float = 0.27
    p_zero_rules: float = 0.24
    p_only_provider: float = 0.01
    # misuse rates among documented transit ASes
    p_export_self_transit: float = 0.60
    p_import_customer: float = 0.30
    # coverage of neighbor directions in documented policies
    p_document_provider: float = 0.9
    p_document_customer: float = 0.8
    p_document_peer: float = 0.35
    # route-object pathologies
    p_missing_route: float = 0.06
    p_stale_route_factor: float = 1.6  # extra never-announced objects per AS
    p_multi_origin: float = 0.05
    p_foreign_maintainer: float = 0.10
    # advanced / rare rule features
    p_compound_refine: float = 0.03
    p_regex_rule: float = 0.04
    p_community_filter: float = 0.0008
    p_regex_range: float = 0.0005
    p_regex_tilde: float = 0.0005
    p_syntax_error: float = 0.0015
    p_route_set_user: float = 0.05
    p_peering_set_user: float = 0.01
    p_filter_set_user: float = 0.01
    # as-set pathologies
    p_empty_as_set: float = 0.12
    p_singleton_as_set: float = 0.15
    p_loop_as_set: float = 0.02
    n_any_member_sets: int = 3
    make_as_any_set: bool = True
    # sibling organizations: fraction of stubs run by a transit AS's org
    # (shared mnt-by — the signal tools/siblings.py clusters on)
    p_sibling_stub: float = 0.06
    # IPv6
    p_ipv6: float = 0.3
    # collectors
    n_collectors: int = 4
    peers_per_collector: int = 12


def tiny_config(seed: int = 42) -> SynthConfig:
    """A small world for unit tests (≈60 ASes)."""
    return SynthConfig(
        seed=seed, n_tier1=3, n_tier2=8, n_tier3=15, n_stub=35,
        n_collectors=2, peers_per_collector=5,
    )


def default_config(seed: int = 42) -> SynthConfig:
    """The benchmark-scale world (≈940 ASes)."""
    return SynthConfig(seed=seed)


@dataclass(slots=True)
class SynthWorld:
    """Everything the generator produced: topology, truth, and dump text."""

    config: SynthConfig
    topology: AsRelationships
    announced: dict[int, list[Prefix]]
    irr_dumps: dict[str, str]
    profiles: dict[int, str]
    collectors: list[Collector]
    # ground truth for sibling inference: sibling ASN -> owning ASN
    sibling_orgs: dict[int, int] = field(default_factory=dict)

    def registry(self) -> Registry:
        """Parse the generated dumps into a multi-IRR registry."""
        registry = Registry()
        for name in IRR_NAMES:
            text = self.irr_dumps.get(name, "")
            registry.add_text(name, text)
        return registry

    def merged_ir(self) -> Ir:
        """Parse and priority-merge all generated dumps."""
        return self.registry().merged()

    def write_to_dir(self, directory: str | Path) -> None:
        """Write dumps, the as-rel file, and collector peers to disk."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        for name, text in self.irr_dumps.items():
            (directory / f"{name.lower()}.db").write_text(text, encoding="utf-8")
        self.topology.save(directory / "as-rel.txt")
        lines = [
            f"{collector.name}|{','.join(map(str, collector.peer_asns))}"
            for collector in self.collectors
        ]
        (directory / "collectors.txt").write_text("\n".join(lines) + "\n", encoding="utf-8")


class _Generator:
    def __init__(self, config: SynthConfig):
        self.config = config
        self.rng = random.Random(config.seed)
        self.topology = AsRelationships()
        self.tier1: list[int] = []
        self.tier2: list[int] = []
        self.tier3: list[int] = []
        self.stubs: list[int] = []
        self.announced: dict[int, list[Prefix]] = {}
        self.profiles: dict[int, str] = {}
        self.home_irr: dict[int, str] = {}
        self.customer_set_name: dict[int, str] = {}
        self.route_set_name: dict[int, str] = {}
        self.org_of: dict[int, int] = {}  # sibling ASes -> owning AS
        # per-IRR object text fragments
        self.objects: dict[str, list[str]] = {name: [] for name in IRR_NAMES}
        self._v4_cursor = 0
        self._v6_cursor = 0

    # -- topology ----------------------------------------------------------

    def build_topology(self) -> None:
        config, rng = self.config, self.rng
        next_asn = 174
        def take(count: int, spacing: int) -> list[int]:
            nonlocal next_asn
            asns = []
            for _ in range(count):
                asns.append(next_asn)
                next_asn += rng.randint(1, spacing)
            return asns

        self.tier1 = take(config.n_tier1, 40)
        self.tier2 = take(config.n_tier2, 60)
        self.tier3 = take(config.n_tier3, 90)
        self.stubs = take(config.n_stub, 120)

        for index, left in enumerate(self.tier1):
            for right in self.tier1[index + 1 :]:
                self.topology.add_peering(left, right)
        for asn in self.tier2:
            for provider in rng.sample(self.tier1, rng.randint(1, min(3, len(self.tier1)))):
                self.topology.add_transit(provider, asn)
        for index, left in enumerate(self.tier2):
            for right in self.tier2[index + 1 :]:
                if rng.random() < 0.08:
                    self.topology.add_peering(left, right)
        for asn in self.tier3:
            pool = self.tier2 if rng.random() < 0.9 else self.tier1
            for provider in rng.sample(pool, rng.randint(1, min(3, len(pool)))):
                self.topology.add_transit(provider, asn)
        for index, left in enumerate(self.tier3):
            for right in self.tier3[index + 1 :]:
                if rng.random() < 0.01:
                    self.topology.add_peering(left, right)
        for asn in self.stubs:
            roll = rng.random()
            pool = self.tier3 if roll < 0.75 else (self.tier2 if roll < 0.97 else self.tier1)
            count = 1 if rng.random() < 0.7 else 2
            for provider in rng.sample(pool, min(count, len(pool))):
                self.topology.add_transit(provider, asn)
        # a sprinkling of stub-stub (IXP-style) peering
        for _ in range(len(self.stubs) // 20):
            left, right = rng.sample(self.stubs, 2)
            self.topology.add_peering(left, right)
        self.topology.tier1 = set(self.tier1)

    def all_ases(self) -> list[int]:
        return self.tier1 + self.tier2 + self.tier3 + self.stubs

    # -- prefixes -----------------------------------------------------------

    def allocate_prefixes(self) -> None:
        rng = self.rng
        for asn in self.all_ases():
            if asn in self.tier1:
                count = rng.randint(6, 10)
            elif asn in self.tier2:
                count = rng.randint(3, 6)
            elif asn in self.tier3:
                count = rng.randint(2, 4)
            else:
                count = rng.randint(1, 2)
            prefixes: list[Prefix] = []
            for _ in range(count):
                length = rng.choice((20, 21, 22, 23, 24, 24, 24))
                # sequential /20 blocks from 20.0.0.0, sub-allocated
                block = (20 << 24) + self._v4_cursor * (1 << 12)
                self._v4_cursor += 1
                sub = block & ~((1 << (32 - length)) - 1)
                prefixes.append(Prefix(4, sub, length))
            if rng.random() < self.config.p_ipv6:
                network = (0x2400 << 112) + self._v6_cursor * (1 << 96)
                self._v6_cursor += 1
                prefixes.append(Prefix(6, network, 32))
                if rng.random() < 0.4:
                    prefixes.append(Prefix(6, network + (1 << 80), 48))
            self.announced[asn] = prefixes

    # -- profiles ------------------------------------------------------------

    def assign_profiles(self) -> None:
        config, rng = self.config, self.rng
        weights = _IRR_WEIGHTS
        total_weight = sum(weight for _, weight in weights)
        for asn in self.all_ases():
            roll = rng.random()
            if asn in self.tier1:
                # Tier-1s split: several with zero rules, several rich
                # (the paper's Figure 1 red crosses).
                profile = "absent" if roll < 0.25 else ("empty" if roll < 0.5 else "documented")
            elif roll < config.p_absent_aut_num:
                profile = "absent"
            elif roll < config.p_absent_aut_num + config.p_zero_rules:
                profile = "empty"
            elif roll < (
                config.p_absent_aut_num + config.p_zero_rules + config.p_only_provider
            ) and self.topology.customers.get(asn):
                # Only-provider policies are a *transit* phenomenon: the
                # paper finds 46 such transit ASes (providers mandated
                # RPSL use; customers and peers are left undocumented).
                profile = "only-provider"
            else:
                profile = "documented"
            self.profiles[asn] = profile
            pick = rng.random() * total_weight
            for name, weight in weights:
                pick -= weight
                if pick <= 0:
                    self.home_irr[asn] = name
                    break
            else:
                self.home_irr[asn] = "RADB"

    # -- emission helpers ------------------------------------------------------

    def emit(self, irr: str, text: str) -> None:
        self.objects[irr].append(text.rstrip() + "\n")

    def maintainer(self, asn: int) -> str:
        return f"MNT-AS{self.org_of.get(asn, asn)}"

    def assign_siblings(self) -> None:
        """A few organizations operate several ASNs (shared maintainer)."""
        rng = self.rng
        owners = self.tier2 + self.tier3
        if not owners:
            return
        for asn in self.stubs:
            if rng.random() < self.config.p_sibling_stub:
                self.org_of[asn] = rng.choice(owners)

    # -- as-sets ------------------------------------------------------------

    def build_as_sets(self) -> None:
        rng, config = self.rng, self.config
        transit = [asn for asn in self.all_ases() if self.topology.customers.get(asn)]
        for asn in transit:
            name = f"AS{asn}:AS-CUSTOMERS" if rng.random() < 0.6 else f"AS-SYNTH{asn}"
            self.customer_set_name[asn] = name
        for asn in transit:
            name = self.customer_set_name[asn]
            members: list[str] = [f"AS{asn}"]
            for customer in sorted(self.topology.customers.get(asn, ())):
                members.append(f"AS{customer}")
                nested = self.customer_set_name.get(customer)
                if nested is not None and rng.random() < 0.9:
                    members.append(nested)
            irr = self.home_irr[asn]
            lines = [f"as-set:     {name}"]
            if members:
                lines.append(f"members:    {', '.join(members)}")
            lines.append(f"mnt-by:     {self.maintainer(asn)}")
            lines.append(f"source:     {irr}")
            self.emit(irr, "\n".join(lines))

        # pathologies: empty, singleton, looping, ANY-member, AS-ANY sets
        sample_pool = self.all_ases()
        n_empty = int(len(transit) * config.p_empty_as_set)
        for index in range(n_empty):
            owner = rng.choice(sample_pool)
            irr = self.home_irr[owner]
            self.emit(
                irr,
                f"as-set:     AS-EMPTY{index}\nmnt-by:     {self.maintainer(owner)}\nsource:     {irr}",
            )
        n_single = int(len(transit) * config.p_singleton_as_set)
        for index in range(n_single):
            owner = rng.choice(sample_pool)
            irr = self.home_irr[owner]
            self.emit(
                irr,
                f"as-set:     AS-ONLY{index}\nmembers:    AS{owner}\n"
                f"mnt-by:     {self.maintainer(owner)}\nsource:     {irr}",
            )
        n_loops = max(1, int(len(transit) * config.p_loop_as_set))
        for index in range(n_loops):
            owner = rng.choice(sample_pool)
            irr = self.home_irr[owner]
            self.emit(
                irr,
                f"as-set:     AS-LOOPA{index}\nmembers:    AS{owner}, AS-LOOPB{index}\nsource:     {irr}",
            )
            self.emit(
                irr,
                f"as-set:     AS-LOOPB{index}\nmembers:    AS-LOOPA{index}\nsource:     {irr}",
            )
        for index in range(config.n_any_member_sets):
            owner = rng.choice(sample_pool)
            irr = self.home_irr[owner]
            self.emit(
                irr,
                f"as-set:     AS-WILD{index}\nmembers:    ANY\nsource:     {irr}",
            )
        if config.make_as_any_set:
            irr = rng.choice(IRR_NAMES)
            self.emit(irr, f"as-set:     AS-ANY\nsource:     {irr}")

    # -- route objects --------------------------------------------------------

    def build_route_objects(self) -> None:
        rng, config = self.rng, self.config
        for asn, prefixes in self.announced.items():
            irr = self.home_irr[asn]
            for prefix in prefixes:
                if rng.random() < config.p_missing_route:
                    continue  # the Missing Routes pathology
                self._emit_route(irr, prefix, asn, self.maintainer(asn))
                if rng.random() < 0.15:
                    # duplicated registration in RADB (cross-IRR overlap)
                    self._emit_route("RADB", prefix, asn, self.maintainer(asn))
                if rng.random() < config.p_multi_origin:
                    providers = sorted(self.topology.providers.get(asn, ()))
                    if providers:
                        other = rng.choice(providers)
                        self._emit_route(
                            "RADB", prefix, other, self.maintainer(other)
                        )
                elif rng.random() < config.p_foreign_maintainer:
                    providers = sorted(self.topology.providers.get(asn, ()))
                    if providers:
                        self._emit_route(
                            "RADB", prefix, asn, self.maintainer(rng.choice(providers))
                        )
            # stale objects: prefixes registered but never announced
            n_stale = int(rng.random() * config.p_stale_route_factor * len(prefixes))
            for _ in range(n_stale):
                block = (20 << 24) + self._v4_cursor * (1 << 12)
                self._v4_cursor += 1
                self._emit_route(irr, Prefix(4, block, 22), asn, self.maintainer(asn))

    def _emit_route(self, irr: str, prefix: Prefix, origin: int, mnt: str) -> None:
        object_class = "route" if prefix.version == 4 else "route6"
        self.emit(
            irr,
            f"{object_class}:      {prefix}\norigin:     AS{origin}\n"
            f"mnt-by:     {mnt}\nsource:     {irr}",
        )

    # -- policies -----------------------------------------------------------

    def _filter_for_neighbor(self, neighbor: int) -> str:
        """The filter a neighbor's routes are matched with (set or ASN)."""
        name = self.customer_set_name.get(neighbor)
        if name is not None and self.rng.random() < 0.8:
            return name
        return f"AS{neighbor}"

    def build_aut_nums(self) -> None:
        for asn in self.all_ases():
            profile = self.profiles[asn]
            if profile == "absent":
                continue
            irr = self.home_irr[asn]
            lines = [f"aut-num:    AS{asn}", f"as-name:    SYNTH-AS{asn}"]
            if profile != "empty" and irr != "LACNIC":
                # The LACNIC dump carries no import/export rules (Table 1).
                lines.extend(self._policy_lines(asn, profile))
            lines.append(f"mnt-by:     {self.maintainer(asn)}")
            lines.append(f"source:     {irr}")
            self.emit(irr, "\n".join(lines))

    def _policy_lines(self, asn: int, profile: str) -> list[str]:
        rng, config = self.rng, self.config
        topology = self.topology
        lines: list[str] = []
        providers = sorted(topology.providers.get(asn, ()))
        customers = sorted(topology.customers.get(asn, ()))
        peers = sorted(topology.peers.get(asn, ()))
        is_transit = bool(customers)
        export_self = is_transit and rng.random() < config.p_export_self_transit
        if asn in self.route_set_name:
            # Route-set adopters (the paper's recommendation) export it.
            self_export_filter = self.route_set_name[asn]
        elif export_self or not is_transit:
            self_export_filter = f"AS{asn}"
        else:
            self_export_filter = self.customer_set_name.get(asn, f"AS{asn}")

        def add(kind: str, body: str) -> None:
            if rng.random() < config.p_syntax_error:
                body += " AND"  # dangling operator: a recorded syntax error
            lines.append(f"{kind}:     {body}")

        for provider in providers:
            if rng.random() > config.p_document_provider:
                continue
            action = f" action pref={rng.randint(50, 300)};" if rng.random() < 0.3 else ""
            add("import", f"from AS{provider}{action} accept ANY")
            add("export", f"to AS{provider} announce {self_export_filter}")

        if profile == "only-provider":
            return lines

        for customer in customers:
            if rng.random() > config.p_document_customer:
                continue
            if rng.random() < config.p_import_customer:
                customer_filter = f"AS{customer}"  # the Import Customer misuse
            else:
                customer_filter = self._filter_for_neighbor(customer)
            add("import", f"from AS{customer} accept {customer_filter}")
            add("export", f"to AS{customer} announce ANY")

        for peer in peers:
            if rng.random() > config.p_document_peer:
                continue
            add("import", f"from AS{peer} accept {self._filter_for_neighbor(peer)}")
            add("export", f"to AS{peer} announce {self_export_filter}")

        lines.extend(self._fancy_rules(asn, providers, customers))
        return lines

    def _fancy_rules(
        self, asn: int, providers: list[int], customers: list[int]
    ) -> list[str]:
        """Rare, advanced rules: regex, refine, communities, skip cases."""
        rng, config = self.rng, self.config
        lines: list[str] = []
        if customers and rng.random() < config.p_regex_rule:
            customer = rng.choice(customers)
            lines.append(
                f"import:     from AS{customer} accept <^AS{customer}+ .* $>"
            )
        if providers and rng.random() < config.p_compound_refine:
            provider = rng.choice(providers)
            lines.append(
                "mp-import:  afi any.unicast from "
                f"AS{provider} accept ANY AND NOT {{0.0.0.0/0, ::/0}} REFINE "
                f"afi ipv4.unicast from AS{provider} action pref=200; accept ANY"
            )
        if rng.random() < config.p_community_filter:
            lines.append(
                "import:     from AS-ANY action pref=100; accept community(65535:666)"
            )
        if providers and rng.random() < config.p_regex_range:
            lines.append(
                f"import:     from AS{providers[0]} accept NOT <AS64512-AS65534>"
            )
        if providers and rng.random() < config.p_regex_tilde:
            lines.append(
                f"import:     from AS{providers[0]} accept NOT <.~* AS{asn} .~*>"
            )
        return lines

    # -- route-sets / peering-sets / filter-sets -------------------------------

    def build_route_sets(self) -> None:
        """Route-sets for the minority of operators that adopt them."""
        rng, config = self.rng, self.config
        for asn in self.all_ases():
            if rng.random() >= config.p_route_set_user:
                continue
            prefixes = [p for p in self.announced.get(asn, []) if p.version == 4]
            if not prefixes:
                continue
            irr = self.home_irr[asn]
            name = f"RS-SYNTH{asn}"
            members = ", ".join(
                str(prefix) + ("^+" if rng.random() < 0.2 else "")
                for prefix in prefixes
            )
            self.emit(
                irr,
                f"route-set:  {name}\nmembers:    {members}\n"
                f"mnt-by:     {self.maintainer(asn)}\nsource:     {irr}",
            )
            self.route_set_name[asn] = name

    def build_other_sets(self) -> None:
        rng, config = self.rng, self.config
        transit = [asn for asn in self.all_ases() if self.topology.customers.get(asn)]
        for asn in transit:
            if rng.random() < config.p_peering_set_user and self.topology.peers.get(asn):
                irr = self.home_irr[asn]
                peer_lines = "".join(
                    f"peering:    AS{peer}\n" for peer in sorted(self.topology.peers[asn])[:4]
                )
                self.emit(
                    irr,
                    f"peering-set: PRNG-SYNTH{asn}\n{peer_lines}source:     {irr}",
                )
            if rng.random() < config.p_filter_set_user:
                irr = self.home_irr[asn]
                self.emit(
                    irr,
                    f"filter-set: FLTR-SYNTH{asn}\n"
                    f"filter:     {self.customer_set_name.get(asn, f'AS{asn}')} AND NOT {{0.0.0.0/0}}\n"
                    f"source:     {irr}",
                )

    # -- assembly -----------------------------------------------------------

    def build(self) -> SynthWorld:
        self.build_topology()
        self.allocate_prefixes()
        self.assign_profiles()
        self.assign_siblings()
        self.build_as_sets()
        self.build_route_sets()
        self.build_route_objects()
        self.build_aut_nums()
        self.build_other_sets()
        dumps = {
            name: "\n".join(fragments) for name, fragments in self.objects.items()
        }
        collectors = default_collectors(
            self.topology,
            count=self.config.n_collectors,
            peers_per_collector=self.config.peers_per_collector,
            seed=self.config.seed + 1,
        )
        return SynthWorld(
            config=self.config,
            topology=self.topology,
            announced=self.announced,
            irr_dumps=dumps,
            profiles=self.profiles,
            collectors=collectors,
            sibling_orgs=dict(self.org_of),
        )


def build_world(config: SynthConfig | None = None) -> SynthWorld:
    """Generate a synthetic world (topology + IRR dumps + collectors)."""
    if config is None:
        config = default_config()
    return _Generator(config).build()
