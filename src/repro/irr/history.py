"""Historical IRR snapshots: churn simulation and diffing.

IRRs publish no history, so longitudinal studies scrape periodic dumps
(paper, Section 6).  This module supplies both halves of that workflow
offline:

* :func:`evolve_ir` applies one epoch of realistic churn to an IR —
  route objects appear and disappear, rules get added and retired,
  as-sets gain members — yielding the "next month's dump";
* :func:`diff_irs` computes what changed between two snapshots (added /
  removed / modified, per object class), the primitive any
  track-the-evolution analysis builds on;
* :func:`snapshot_series` chains epochs, and :func:`evolution_stats`
  summarizes a series the way a longitudinal figure would.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.ir.json_io import dumps_ir, loads_ir
from repro.ir.model import Ir, RouteObject
from repro.ir.render import render_object
from repro.net.prefix import Prefix
from repro.rpsl.policy import parse_policy

__all__ = [
    "ChurnConfig",
    "IrDiff",
    "diff_irs",
    "evolve_ir",
    "evolve_with_journal",
    "snapshot_series",
    "evolution_stats",
]


@dataclass(frozen=True, slots=True)
class ChurnConfig:
    """Per-epoch churn rates (fractions of the existing object counts)."""

    route_removal: float = 0.02
    route_addition: float = 0.04  # net growth: registries accrete objects
    rule_removal: float = 0.01
    rule_addition: float = 0.02
    as_set_member_addition: float = 0.05
    seed: int = 99


@dataclass(slots=True)
class IrDiff:
    """What changed between two snapshots, per object class."""

    added: dict[str, set] = field(default_factory=dict)
    removed: dict[str, set] = field(default_factory=dict)
    modified: dict[str, set] = field(default_factory=dict)

    def count(self, kind: str) -> int:
        """Total additions/removals/modifications of one kind."""
        bucket = getattr(self, kind)
        return sum(len(keys) for keys in bucket.values())

    def summary(self) -> dict[str, int]:
        """Totals per change kind."""
        return {kind: self.count(kind) for kind in ("added", "removed", "modified")}


def _clone(ir: Ir) -> Ir:
    # The JSON codec is a correct deep copy for the whole object graph.
    return loads_ir(dumps_ir(ir))


def _keyed(ir: Ir) -> dict[str, dict]:
    route_keys = {}
    for route in ir.route_objects:
        route_keys[(str(route.prefix), route.origin, route.source)] = route
    return {
        "aut-num": dict(ir.aut_nums),
        "as-set": dict(ir.as_sets),
        "route-set": dict(ir.route_sets),
        "peering-set": dict(ir.peering_sets),
        "filter-set": dict(ir.filter_sets),
        "route": route_keys,
    }


def diff_irs(old: Ir, new: Ir) -> IrDiff:
    """Compute added/removed/modified objects between two snapshots.

    Modification is detected by comparing the objects' canonical RPSL
    rendering, so reordered-but-equal objects do not count as changed.
    """
    diff = IrDiff()
    old_keyed = _keyed(old)
    new_keyed = _keyed(new)
    for cls in old_keyed:
        old_objects = old_keyed[cls]
        new_objects = new_keyed[cls]
        old_keys = set(old_objects)
        new_keys = set(new_objects)
        diff.added[cls] = new_keys - old_keys
        diff.removed[cls] = old_keys - new_keys
        diff.modified[cls] = {
            key
            for key in old_keys & new_keys
            if render_object(old_objects[key]) != render_object(new_objects[key])
        }
    return diff


def evolve_ir(ir: Ir, config: ChurnConfig | None = None, epoch: int = 0) -> Ir:
    """One epoch of churn; deterministic for a given (config.seed, epoch)."""
    if config is None:
        config = ChurnConfig()
    rng = random.Random(config.seed * 1_000_003 + epoch)
    snapshot = _clone(ir)

    # Route objects: remove a few, add more (registries grow).
    survivors = [
        route
        for route in snapshot.route_objects
        if rng.random() >= config.route_removal
    ]
    origins = sorted({route.origin for route in snapshot.route_objects}) or [64500]
    sources = sorted({route.source for route in snapshot.route_objects if route.source}) or [""]
    additions = int(len(snapshot.route_objects) * config.route_addition)
    for index in range(additions):
        origin = rng.choice(origins)
        network = ((60 + epoch) << 24) + (index << 10)
        survivors.append(
            RouteObject(
                prefix=Prefix(4, network, 22),
                origin=origin,
                mnt_by=[f"MNT-AS{origin}"],
                source=rng.choice(sources),
            )
        )
    snapshot.route_objects = survivors

    # Rules: retire a few, add fresh simple ones.
    documented = [aut for aut in snapshot.aut_nums.values() if aut.rule_count]
    for aut_num in documented:
        if aut_num.imports and rng.random() < config.rule_removal * len(aut_num.imports):
            aut_num.imports.pop(rng.randrange(len(aut_num.imports)))
        if rng.random() < config.rule_addition:
            neighbor = rng.choice(origins)
            aut_num.imports.append(
                parse_policy("import", f"from AS{neighbor} accept AS{neighbor}")
            )

    # As-sets slowly accrete members.
    for as_set in snapshot.as_sets.values():
        if rng.random() < config.as_set_member_addition:
            as_set.members_asn.append(rng.choice(origins))
    return snapshot


def evolve_with_journal(
    ir: Ir,
    config: ChurnConfig | None = None,
    epoch: int = 0,
    *,
    start_serial: int = 1,
):
    """One epoch of churn plus the NRTM-style journal describing it.

    The churn loop already computes the diff implicitly; this keeps it —
    the returned :class:`~repro.irr.journal.Journal` replays the epoch
    onto the input IR (``apply_journal_to_ir(ir, journal)`` reproduces
    the evolved snapshot object-for-object).  Returns
    ``(evolved_ir, journal)``.
    """
    from repro.irr.journal import journal_between

    evolved = evolve_ir(ir, config, epoch=epoch)
    return evolved, journal_between(ir, evolved, start_serial=start_serial)


def snapshot_series(ir: Ir, epochs: int, config: ChurnConfig | None = None) -> list[Ir]:
    """The initial IR followed by ``epochs`` evolved snapshots."""
    series = [ir]
    for epoch in range(epochs):
        series.append(evolve_ir(series[-1], config, epoch=epoch))
    return series


def evolution_stats(series: list[Ir]) -> list[dict[str, int]]:
    """Per-epoch object counts plus churn vs the previous snapshot."""
    rows: list[dict[str, int]] = []
    for index, snapshot in enumerate(series):
        row: dict[str, int] = {"epoch": index, **snapshot.counts()}
        if index:
            row.update(diff_irs(series[index - 1], snapshot).summary())
        rows.append(row)
    return rows
