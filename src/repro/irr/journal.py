"""NRTM-style journals: serial-numbered deltas between IR snapshots.

Real IRRs publish near-real-time mirroring (NRTM) streams — per-source
sequences of ``ADD``/``DEL`` operations, each tagged with a monotonically
increasing serial — so mirrors absorb churn without refetching whole
dumps.  This module is the offline counterpart for the synthetic world:

* :class:`JournalEntry`/:class:`Journal` — the delta format, one entry
  per changed object, carrying the serial, the source registry, the
  object class and key, and (for ``ADD``/``MOD``) the full new object
  encoded with the IR codec;
* :func:`journal_between` — derive the journal separating two snapshots,
  reusing :func:`repro.irr.history.diff_irs` semantics (churn already
  produced the diff; now it is kept instead of thrown away);
* :func:`apply_journal_to_ir` — replay a journal onto an IR, returning
  the patched IR plus a :class:`~repro.core.degradation.DegradationReport`.
  Out-of-order or duplicate serials, missing targets, and corrupt
  payloads never produce a wrong IR: the replay stays deterministic and
  the report tells callers to fall back to a full recompile;
* :func:`save_journal`/:func:`load_journal` — a JSONL disk format
  (header line + one entry per line).  Unparseable lines are skipped and
  surfaced as issues, again feeding the degradation contract.

The incremental index path (:func:`repro.core.compiled.patch_index`,
``Session.apply_deltas``) consumes these journals; ``rpslyzer serve``
follows one on disk or accepts it over ``POST /reload``.
"""

from __future__ import annotations

import copy
import json
import weakref
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Iterable

import repro.ir.json_io  # noqa: F401 — registers the IR dataclasses with the codec
from repro.core.degradation import DegradationReport
from repro.ir import serialize
from repro.ir.model import Ir
from repro.net.prefix import Prefix, PrefixError

__all__ = [
    "JOURNAL_FORMAT",
    "Journal",
    "JournalEntry",
    "JournalError",
    "apply_journal_to_ir",
    "journal_between",
    "load_journal",
    "save_journal",
]

JOURNAL_FORMAT = "rpslyzer-journal/1"

_ACTIONS = ("ADD", "DEL", "MOD")
# Deterministic class order for journal emission (route churn last so a
# reader sees policy-object changes before the table that references them).
_CLASSES = ("aut-num", "as-set", "route-set", "peering-set", "filter-set", "route")


class JournalError(ValueError):
    """A journal document that cannot be trusted at all (bad header)."""


@dataclass(frozen=True, slots=True)
class JournalEntry:
    """One NRTM-style operation.

    ``key`` identifies the object within its class: the ASN for
    ``aut-num``, the set name for the named classes, and the
    ``(prefix, origin, source)`` triple for ``route``.  ``obj`` carries
    the full post-change object for ``ADD``/``MOD`` (None for ``DEL``),
    so replay needs no access to the emitting side's IR.
    """

    serial: int
    action: str
    cls: str
    key: object
    obj: object = None
    source: str = ""

    def to_jsonable(self) -> dict:
        """The wire/disk form: plain JSON, the object via the IR codec."""
        key = list(self.key) if isinstance(self.key, tuple) else self.key
        entry = {
            "serial": self.serial,
            "action": self.action,
            "cls": self.cls,
            "key": key,
            "source": self.source,
        }
        if self.obj is not None:
            entry["obj"] = serialize.encode(self.obj)
        return entry

    @classmethod
    def from_jsonable(cls, data: dict) -> "JournalEntry":
        action = data["action"]
        if action not in _ACTIONS:
            raise ValueError(f"unknown journal action {action!r}")
        if data["cls"] not in _CLASSES:
            raise ValueError(f"unknown journal class {data['cls']!r}")
        key = data["key"]
        if isinstance(key, list):
            key = tuple(key)
        obj = serialize.decode(data["obj"]) if "obj" in data else None
        return cls(
            serial=int(data["serial"]),
            action=action,
            cls=data["cls"],
            key=key,
            obj=obj,
            source=data.get("source", ""),
        )


@dataclass(slots=True)
class Journal:
    """An ordered sequence of entries plus any parse-time issues.

    ``issues`` is non-empty when :func:`load_journal` had to skip
    corrupt lines; :func:`apply_journal_to_ir` folds them into its
    degradation report so a damaged journal degrades to a full recompile
    instead of silently under-applying.
    """

    entries: list[JournalEntry] = field(default_factory=list)
    issues: list[str] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def serials(self) -> dict[str, int]:
        """Highest serial seen per source registry."""
        last: dict[str, int] = {}
        for entry in self.entries:
            if entry.serial > last.get(entry.source, -1):
                last[entry.source] = entry.serial
        return last

    def digest(self) -> str:
        """A stable content digest (chains the patched index's digest)."""
        return serialize.stable_digest(
            [entry.to_jsonable() for entry in self.entries]
        )

    def to_jsonable(self) -> dict:
        """The whole journal as one plain-JSON document (format-tagged)."""
        return {
            "format": JOURNAL_FORMAT,
            "entries": [entry.to_jsonable() for entry in self.entries],
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "Journal":
        if data.get("format") != JOURNAL_FORMAT:
            raise JournalError(f"not a journal: format={data.get('format')!r}")
        journal = cls()
        for position, raw in enumerate(data.get("entries", ())):
            try:
                journal.entries.append(JournalEntry.from_jsonable(raw))
            except (KeyError, TypeError, ValueError) as exc:
                journal.issues.append(f"entry {position}: {exc}")
        return journal


def _fast_route_key(route) -> tuple:
    """The in-memory form of a route's journal key.

    Hashing the (frozen) :class:`~repro.net.prefix.Prefix` directly skips
    the string rendering that dominates at production scale — building a
    100k-route index by stringified keys costs hundreds of milliseconds,
    by Prefix keys tens.
    """
    return (route.prefix, route.origin, route.source)


def _entry_fast_key(key: object) -> tuple | None:
    """Convert a wire-format ``(prefix_str, origin, source)`` key to the
    in-memory form; ``None`` if it cannot name any live route."""
    try:
        return (Prefix.parse(key[0]), key[1], key[2])
    except (PrefixError, TypeError, IndexError, AttributeError):
        return None


# Per-snapshot route indexes: id(ir) -> (weakref to the ir, index).  The
# index maps _fast_route_key -> tuple of live RouteObject copies (keyed
# collapse groups duplicates, the tuple preserves multiplicity).  Entries
# die with their IR via weakref.finalize, so a long-running session holds
# at most one index per live snapshot; apply_journal_to_ir derives the
# next snapshot's index from the previous one with an O(delta) update
# instead of an O(table) rescan — the heart of the millisecond delta path.
_ROUTE_INDEX_CACHE: dict[int, tuple] = {}


def _cached_route_index(ir: Ir) -> dict | None:
    entry = _ROUTE_INDEX_CACHE.get(id(ir))
    if entry is not None and entry[0]() is ir:
        return entry[1]
    return None


def _remember_route_index(ir: Ir, index: dict) -> None:
    try:
        ref = weakref.ref(ir)
    except TypeError:  # no weakref support: skip caching, stay correct
        return
    _ROUTE_INDEX_CACHE[id(ir)] = (ref, index)
    weakref.finalize(ir, _ROUTE_INDEX_CACHE.pop, id(ir), None)


def _build_route_index(ir: Ir) -> dict:
    grouped: dict[tuple, list] = {}
    for route in ir.route_objects:
        grouped.setdefault(_fast_route_key(route), []).append(route)
    return {key: tuple(copies) for key, copies in grouped.items()}


def _object_key(cls: str, key: object):
    """Normalize a diff key into its journal representation."""
    if cls == "route" and isinstance(key, list):
        return tuple(key)
    return key


def journal_between(old: Ir, new: Ir, *, start_serial: int = 1) -> Journal:
    """The journal that transforms ``old`` into ``new``.

    Reuses :func:`~repro.irr.history.diff_irs` semantics (rendering-based
    modification detection) and assigns serials sequentially in a
    deterministic order: per class, deletions then modifications then
    additions, keys sorted.  Entry sources come from the objects
    themselves, matching how a per-registry NRTM stream would tag them.
    """
    from repro.irr.history import _keyed, diff_irs

    diff = diff_irs(old, new)
    old_keyed = _keyed(old)
    new_keyed = _keyed(new)
    journal = Journal()
    serial = start_serial
    for cls in _CLASSES:
        buckets = (
            ("DEL", sorted(diff.removed.get(cls, ()), key=repr)),
            ("MOD", sorted(diff.modified.get(cls, ()), key=repr)),
            ("ADD", sorted(diff.added.get(cls, ()), key=repr)),
        )
        for action, keys in buckets:
            for key in keys:
                if action == "DEL":
                    obj = None
                    source = getattr(old_keyed[cls][key], "source", "")
                else:
                    obj = new_keyed[cls][key]
                    source = getattr(obj, "source", "")
                journal.entries.append(
                    JournalEntry(
                        serial=serial,
                        action=action,
                        cls=cls,
                        key=_object_key(cls, key),
                        obj=obj,
                        source=source or "",
                    )
                )
                serial += 1
    return journal


def _shallow_copy_ir(ir: Ir) -> Ir:
    """A structurally fresh IR sharing the (immutable-by-convention)
    objects: container copies are O(objects), not O(bytes), which is what
    keeps journal application off the delta path's critical cost."""
    return Ir(
        aut_nums=dict(ir.aut_nums),
        as_sets=dict(ir.as_sets),
        route_sets=dict(ir.route_sets),
        peering_sets=dict(ir.peering_sets),
        filter_sets=dict(ir.filter_sets),
        route_objects=list(ir.route_objects),
    )


def apply_journal_to_ir(
    ir: Ir, journal: Journal | Iterable[JournalEntry]
) -> tuple[Ir, DegradationReport]:
    """Replay a journal onto an IR; never mutates the input.

    The replay is deterministic for any input, valid or not: entries
    apply in order, a ``DEL``/``MOD`` whose target is missing records a
    degradation event and (for ``MOD``) falls back to an add, a
    duplicate ``ADD`` replaces.  Serial discipline — strictly increasing
    per source — is checked up front; violations degrade but do not stop
    the replay.  A non-empty report tells the index layer to recompile
    from scratch instead of patching incrementally: degraded journals
    may describe the final state only loosely, and correctness beats
    latency ("never wrong answers").
    """
    report = DegradationReport()
    entries = list(journal.entries if isinstance(journal, Journal) else journal)
    if isinstance(journal, Journal):
        for issue in journal.issues:
            report.record("journal", "corrupt-entry", detail=issue)

    last_serial: dict[str, int] = {}
    for entry in entries:
        previous = last_serial.get(entry.source)
        if previous is not None and entry.serial <= previous:
            kind = (
                "duplicate-serial" if entry.serial == previous else "out-of-order-serial"
            )
            report.record(
                "journal",
                kind,
                detail=f"source {entry.source or '?'}: {entry.serial} after {previous}",
            )
        else:
            last_serial[entry.source] = entry.serial

    patched = _shallow_copy_ir(ir)
    new_index: dict[tuple, tuple] | None = None
    removed_ids: set[int] = set()

    def route_index() -> dict[tuple, tuple]:
        # Keyed like diff_irs: duplicate declarations of the same
        # (prefix, origin, source) collapse to one journal object, so a
        # DEL/MOD must retire every live copy at once.  The base index is
        # recalled from the per-snapshot cache when this IR came out of a
        # previous apply — then the whole replay is O(delta), not O(table).
        nonlocal new_index
        if new_index is None:
            base = _cached_route_index(ir)
            if base is None:
                base = _build_route_index(ir)
                _remember_route_index(ir, base)
            new_index = dict(base)
        return new_index

    named = {
        "aut-num": patched.aut_nums,
        "as-set": patched.as_sets,
        "route-set": patched.route_sets,
        "peering-set": patched.peering_sets,
        "filter-set": patched.filter_sets,
    }
    appended: list = []
    for entry in entries:
        if entry.action in ("ADD", "MOD") and entry.obj is None:
            report.record(
                "journal", "missing-payload",
                detail=f"{entry.cls} {entry.key!r} serial {entry.serial}",
            )
            continue
        if entry.cls == "route":
            key = _entry_fast_key(entry.key)
            index = route_index()
            live = index.get(key, ()) if key is not None else ()
            if entry.action == "DEL":
                if live:
                    removed_ids.update(id(route) for route in live)
                    del index[key]
                else:
                    report.record(
                        "journal", "missing-target",
                        detail=f"route {entry.key!r} serial {entry.serial}",
                    )
            else:
                if entry.action == "MOD" and not live:
                    report.record(
                        "journal", "missing-target",
                        detail=f"route {entry.key!r} serial {entry.serial}",
                    )
                if entry.action == "ADD" and live:
                    report.record(
                        "journal", "duplicate-add",
                        detail=f"route {entry.key!r} serial {entry.serial}",
                    )
                if live:
                    removed_ids.update(id(route) for route in live)
                    del index[key]
                obj = entry.obj
                if id(obj) in removed_ids:
                    # The payload *is* a retired instance (e.g. a MOD that
                    # re-sends the live object): append a fresh copy so the
                    # identity-based removal cannot swallow it.
                    obj = copy.copy(obj)
                obj_key = _fast_route_key(obj)
                if key is None or key != obj_key:
                    # The entry key cannot name the payload it carries
                    # (unparseable, wrong arity, or a different route
                    # entirely).  The replay below still lands the object
                    # under its own key, but the index layer patches the
                    # trie by *entry* keys — so record a degradation and
                    # let the full-recompile fallback keep answers right.
                    report.record(
                        "journal", "key-mismatch",
                        detail=(
                            f"route entry key {entry.key!r} does not match "
                            f"payload {obj_key!r} serial {entry.serial}"
                        ),
                    )
                # Index the payload under its own key, which a malformed
                # journal may spell differently from the entry key; any
                # pre-existing copies under that spelling stay live.
                index[obj_key] = index.get(obj_key, ()) + (obj,)
                appended.append(obj)
        else:
            table = named[entry.cls]
            key = entry.key
            if entry.action == "DEL":
                if key in table:
                    del table[key]
                else:
                    report.record(
                        "journal", "missing-target",
                        detail=f"{entry.cls} {key!r} serial {entry.serial}",
                    )
            else:
                if entry.action == "MOD" and key not in table:
                    report.record(
                        "journal", "missing-target",
                        detail=f"{entry.cls} {key!r} serial {entry.serial}",
                    )
                if entry.action == "ADD" and key in table:
                    report.record(
                        "journal", "duplicate-add",
                        detail=f"{entry.cls} {key!r} serial {entry.serial}",
                    )
                table[key] = entry.obj
    if removed_ids or appended:
        patched.route_objects = [
            route for route in patched.route_objects if id(route) not in removed_ids
        ] + [route for route in appended if id(route) not in removed_ids]
    if new_index is not None:
        _remember_route_index(patched, new_index)
    return patched, report


def save_journal(journal: Journal, destination: str | Path | IO[str]) -> None:
    """Write the JSONL form: a header line, then one entry per line."""
    def write(stream: IO[str]) -> None:
        stream.write(json.dumps({"format": JOURNAL_FORMAT}) + "\n")
        for entry in journal.entries:
            stream.write(json.dumps(entry.to_jsonable(), sort_keys=True) + "\n")

    if hasattr(destination, "write"):
        write(destination)
    else:
        with open(destination, "w", encoding="utf-8") as stream:
            write(stream)


def load_journal(source: str | Path | IO[str]) -> Journal:
    """Read a JSONL journal back; corrupt entry lines become issues.

    Raises :class:`JournalError` only when the header is missing or
    names an unknown format — with no trustworthy framing, skipping
    lines could silently drop arbitrary updates.  Individual bad lines
    are recorded on ``Journal.issues`` so the apply step degrades to a
    full recompile rather than guessing.
    """
    if hasattr(source, "read"):
        lines = source.read().splitlines()
    else:
        lines = Path(source).read_text(encoding="utf-8").splitlines()
    if not lines:
        raise JournalError("empty journal document")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise JournalError(f"unreadable journal header: {exc}") from exc
    if not isinstance(header, dict) or header.get("format") != JOURNAL_FORMAT:
        raise JournalError(
            f"not a journal: format={header.get('format')!r}"
            if isinstance(header, dict)
            else "not a journal: header is not an object"
        )
    journal = Journal()
    for number, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            journal.entries.append(JournalEntry.from_jsonable(json.loads(line)))
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            journal.issues.append(f"line {number}: {exc}")
    return journal


def route_prefix(entry: JournalEntry) -> Prefix:
    """The prefix a route entry refers to (key-side, works for DELs)."""
    return Prefix.parse(entry.key[0])
