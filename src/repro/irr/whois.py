"""An IRRd-style WHOIS query server and client over an IR.

IRRs serve RPSL through the WHOIS protocol (port 43) plus IRRd's
bang-command extension; tools like BGPq4 drive the latter.  This module
implements both faces over a parsed :class:`~repro.ir.model.Ir` so the
whole query path — the thing the paper's pipeline replaces with bulk dump
parsing — exists as a runnable substrate:

Plain WHOIS queries (one per line, response followed by a blank line):

* ``AS2914`` — the aut-num object text;
* ``AS-SET-NAME`` / ``RS-...`` / ``PRNG-...`` / ``FLTR-...`` — set text;
* ``192.0.2.0/24`` — all route objects exactly matching the prefix;
* ``-i origin AS2914`` — all route objects with that origin (RIPE syntax).

IRRd bang commands (``!`` prefix; responses framed ``A<len>\\n...C\\n``,
``C`` for success without data, ``D`` for not found, ``F <msg>`` errors):

* ``!gAS2914`` / ``!6AS2914`` — IPv4/IPv6 prefixes originated by the AS;
* ``!iAS-FOO`` — direct members of a set; ``!iAS-FOO,1`` — recursive;
* ``!j`` — serial/summary; ``!q`` — quit.
"""

from __future__ import annotations

import logging
import random
import socket
import socketserver
import threading
import time

from repro.core.degradation import DegradationReport
from repro.core.query import QueryEngine
from repro.ir.model import Ir
from repro.ir.render import (
    render_as_set,
    render_aut_num,
    render_filter_set,
    render_peering_set,
    render_route_object,
    render_route_set,
)
from repro.net.asn import AsnError, parse_asn
from repro.net.prefix import Prefix, PrefixError
from repro.rpsl.names import NameKind, classify_name, normalize_name

__all__ = ["WhoisEngine", "WhoisServer", "whois_query", "MAX_QUERY_BYTES"]

logger = logging.getLogger(__name__)

# Longest query line the server will read; real queries are a few dozen
# bytes, so anything near this cap is garbage or abuse, not a lookup.
MAX_QUERY_BYTES = 4096


class WhoisEngine:
    """Protocol-independent query answering over one IR."""

    def __init__(self, ir: Ir):
        self.ir = ir
        self.query = QueryEngine(ir)

    # -- plain whois -----------------------------------------------------

    def lookup(self, text: str) -> str | None:
        """Answer a plain WHOIS query; None means no entries found."""
        text = text.strip()
        if not text:
            return None
        if text.lower().startswith("-i origin "):
            return self._routes_by_origin_text(text.split()[-1])
        if "/" in text:
            return self._routes_by_prefix(text)
        kind = classify_name(text)
        if kind is NameKind.ASN:
            aut_num = self.ir.aut_nums.get(parse_asn(text))
            return render_aut_num(aut_num) if aut_num else None
        name = normalize_name(text)
        if kind is NameKind.AS_SET and name in self.ir.as_sets:
            return render_as_set(self.ir.as_sets[name])
        if kind is NameKind.ROUTE_SET and name in self.ir.route_sets:
            return render_route_set(self.ir.route_sets[name])
        if kind is NameKind.PEERING_SET and name in self.ir.peering_sets:
            return render_peering_set(self.ir.peering_sets[name])
        if kind is NameKind.FILTER_SET and name in self.ir.filter_sets:
            return render_filter_set(self.ir.filter_sets[name])
        return None

    def _routes_by_prefix(self, text: str) -> str | None:
        try:
            prefix = Prefix.parse(text)
        except PrefixError:
            return None
        matches = [
            render_route_object(route)
            for route in self.ir.route_objects
            if route.prefix == prefix
        ]
        return "\n\n".join(matches) if matches else None

    def _routes_by_origin_text(self, asn_text: str) -> str | None:
        try:
            asn = parse_asn(asn_text)
        except AsnError:
            return None
        matches = [
            render_route_object(route)
            for route in self.ir.route_objects
            if route.origin == asn
        ]
        return "\n\n".join(matches) if matches else None

    # -- IRRd bang commands ------------------------------------------------

    def bang(self, command: str) -> str:
        """Answer one ``!`` command, returning the framed response."""
        command = command.strip()
        if command in ("!q", "!e"):
            return ""
        if command == "!j":
            counts = self.ir.counts()
            return _frame(
                f"objects: aut-num={counts['aut-num']} route={counts['route']}"
            )
        if command.startswith(("!g", "!6")):
            version = 4 if command.startswith("!g") else 6
            return self._origin_prefixes(command[2:], version)
        if command.startswith("!i"):
            return self._set_members(command[2:])
        return f"F unrecognized command {command!r}"

    def _origin_prefixes(self, asn_text: str, version: int) -> str:
        try:
            asn = parse_asn(asn_text)
        except AsnError:
            return f"F invalid AS number {asn_text!r}"
        keys = self.query.routes.origin_keys(asn)
        if not keys:
            return "D"
        prefixes = sorted(Prefix(*key) for key in keys if key[0] == version)
        if not prefixes:
            return "D"
        return _frame(" ".join(str(prefix) for prefix in prefixes))

    def _set_members(self, argument: str) -> str:
        name, _, flag = argument.partition(",")
        name = normalize_name(name)
        recursive = flag.strip() == "1"
        if recursive:
            resolution = self.query.flatten_as_set(name)
            if not resolution.recorded:
                return "D"
            members = [f"AS{asn}" for asn in sorted(resolution.members)]
        else:
            as_set = self.ir.as_sets.get(name)
            if as_set is None:
                return "D"
            members = [f"AS{asn}" for asn in as_set.members_asn]
            members += list(as_set.members_set)
        if not members:
            return _frame("")
        return _frame(" ".join(members))


def _frame(data: str) -> str:
    """IRRd framing: A<byte-length>, the data, then C."""
    payload = data + "\n" if data else ""
    return f"A{len(payload.encode())}\n{payload}C"


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:  # pragma: no cover - exercised via client
        engine: WhoisEngine = self.server.engine  # type: ignore[attr-defined]
        while True:
            line = self.rfile.readline(MAX_QUERY_BYTES + 1)
            if not line:
                return
            if len(line) > MAX_QUERY_BYTES and not line.endswith(b"\n"):
                # An over-long line would otherwise buffer unboundedly;
                # refuse it, then discard (in bounded reads) up to the next
                # newline so the connection stays in sync for later queries.
                self.wfile.write(b"F query line too long\n\n")
                self.wfile.flush()
                while line and not line.endswith(b"\n"):
                    line = self.rfile.readline(MAX_QUERY_BYTES + 1)
                continue
            text = line.decode("utf-8", errors="replace").strip()
            if text in ("!q", "!e", "-k q", "q"):
                return
            if text.startswith("!"):
                response = engine.bang(text)
            else:
                found = engine.lookup(text)
                response = found if found is not None else "%  No entries found"
            self.wfile.write(response.encode("utf-8") + b"\n\n")
            self.wfile.flush()


class _TrackingTCPServer(socketserver.ThreadingTCPServer):
    """ThreadingTCPServer that keeps handles on its handler threads.

    The stock ``daemon_threads=True`` mixin fires handler threads and
    forgets them, so ``stop()`` cannot tell whether a handler is wedged
    on a slow client.  We spawn the threads ourselves and keep a pruned
    list, which :meth:`WhoisServer.stop` joins and audits.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.handler_threads: list[threading.Thread] = []
        self._threads_lock = threading.Lock()

    def process_request(self, request, client_address) -> None:
        thread = threading.Thread(
            target=self.process_request_thread,
            args=(request, client_address),
            name=f"whois-handler-{client_address[1]}",
            daemon=True,
        )
        with self._threads_lock:
            self.handler_threads = [
                alive for alive in self.handler_threads if alive.is_alive()
            ]
            self.handler_threads.append(thread)
        thread.start()

    def live_handler_threads(self) -> list[threading.Thread]:
        with self._threads_lock:
            return [thread for thread in self.handler_threads if thread.is_alive()]


class WhoisServer:
    """A threaded WHOIS server bound to ``(host, port)``; port 0 = ephemeral.

    Use as a context manager::

        with WhoisServer(ir) as server:
            text = whois_query("localhost", server.port, "AS2914")
    """

    def __init__(self, ir: Ir, host: str = "127.0.0.1", port: int = 0):
        self.engine = WhoisEngine(ir)
        self._server = _TrackingTCPServer(
            (host, port), _Handler, bind_and_activate=True
        )
        self._server.engine = self.engine  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The bound TCP port."""
        return self._server.server_address[1]

    def start(self) -> "WhoisServer":
        """Serve in a daemon thread."""
        self._thread = threading.Thread(
            target=self._server.serve_forever, kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self, join_timeout: float = 5.0) -> DegradationReport:
        """Shut down, join service and handler threads, close the socket.

        Threads that refuse to exit within ``join_timeout`` (a handler
        wedged on a slow or dead client, say) are *reported*, not
        swallowed: the returned :class:`DegradationReport` counts each
        leak (``whois/handler-thread-leaked``,
        ``whois/service-thread-leaked``), mirroring the pipeline's
        degradation contract.  The listening socket is force-closed
        either way so the port is released; leaked daemon threads then
        die with the process instead of pinning it.
        """
        report = DegradationReport()
        deadline = time.monotonic() + join_timeout
        if self._thread is not None:
            # shutdown() waits on serve_forever's acknowledgement, so it
            # must only run when the service thread was actually started.
            self._server.shutdown()
            self._thread.join(timeout=join_timeout)
            if self._thread.is_alive():
                report.record(
                    "whois",
                    "service-thread-leaked",
                    f"alive after {join_timeout:.1f}s join timeout",
                )
        for thread in self._server.live_handler_threads():
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
            if thread.is_alive():
                report.record(
                    "whois",
                    "handler-thread-leaked",
                    f"alive after {join_timeout:.1f}s join timeout",
                )
        if report:
            logger.warning("whois shutdown degraded: %s; force-closing socket", report)
        self._server.server_close()
        self._thread = None
        return report

    def __enter__(self) -> "WhoisServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def _query_once(host: str, port: int, query: str, timeout: float) -> str:
    with socket.create_connection((host, port), timeout=timeout) as connection:
        connection.sendall(query.encode("utf-8") + b"\n")
        connection.sendall(b"!q\n")
        chunks = []
        while True:
            data = connection.recv(65536)
            if not data:
                break
            chunks.append(data)
    return b"".join(chunks).decode("utf-8").rstrip()


def whois_query(
    host: str,
    port: int,
    query: str,
    timeout: float = 5.0,
    *,
    retries: int = 0,
    backoff: float = 0.1,
    max_backoff: float = 2.0,
    max_elapsed: float = 30.0,
    rng: random.Random | None = None,
) -> str:
    """Send one query and return the response text (trailing blanks stripped).

    With ``retries`` > 0, connection-level failures (refused, reset,
    timed out) are retried up to that many extra times with *full-jitter*
    exponential backoff: each delay is drawn uniformly from ``[0, cap)``
    where the cap doubles from ``backoff`` up to ``max_backoff``.  Full
    jitter (rather than the ±50% kind) means a herd of clients that
    failed together against a recovering server spreads across the whole
    window instead of re-synchronizing near the cap.  ``max_elapsed``
    bounds the *total* time spent retrying — once the budget is spent
    the failure re-raises even with retries remaining — and ``rng``
    injects a seeded :class:`random.Random` so tests are deterministic.
    """
    attempt = 0
    generator = rng if rng is not None else random
    started = time.monotonic()
    while True:
        try:
            return _query_once(host, port, query, timeout)
        except OSError:
            elapsed = time.monotonic() - started
            if attempt >= retries or elapsed >= max_elapsed:
                raise
            cap = min(backoff * (2**attempt), max_backoff)
            delay = min(generator.uniform(0, cap), max_elapsed - elapsed)
            time.sleep(delay)
            attempt += 1
