"""The multi-IRR registry model (Table 1 of the paper).

A :class:`Registry` ties together the per-IRR IRs, their parse errors, and
the merged view used by verification and characterization.  On disk a
registry is a directory of ``<irr-name>.db`` dump files, mirroring how the
paper ingests the 13 public IRR dumps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.ir.merge import IRR_PRIORITY, merge_irs
from repro.ir.model import Ir
from repro.irr.dump import parse_dump_file, parse_dump_text
from repro.obs import get_registry
from repro.rpsl.errors import ErrorCollector

__all__ = ["IrrSource", "Registry", "parse_registry_dir"]


def _record_source(source: IrrSource) -> None:
    """Fold one parsed IRR's object/rule counts into the live registry."""
    registry = get_registry()
    if not registry.enabled:
        return
    counts = source.ir.counts()
    objects = registry.counter("parse_objects_total", irr=source.name)
    for kind in ("aut-num", "as-set", "route-set", "peering-set", "filter-set", "route"):
        objects.inc(counts[kind])
    registry.counter("parse_rules_total", irr=source.name).inc(
        counts["import"] + counts["export"]
    )
    registry.counter("parse_bytes_total", irr=source.name).inc(source.raw_bytes)


@dataclass(slots=True)
class IrrSource:
    """One IRR's parsed contents plus bookkeeping for Table 1."""

    name: str
    ir: Ir
    errors: ErrorCollector
    raw_bytes: int = 0

    def table1_row(self) -> dict[str, int]:
        """The Table 1 columns for this IRR."""
        counts = self.ir.counts()
        return {
            "size_bytes": self.raw_bytes,
            "aut-num": counts["aut-num"],
            "route": counts["route"],
            "import": counts["import"],
            "export": counts["export"],
        }


@dataclass(slots=True)
class Registry:
    """A set of IRRs and their priority-merged IR."""

    sources: dict[str, IrrSource] = field(default_factory=dict)
    priority: tuple[str, ...] = IRR_PRIORITY

    def add_text(self, name: str, text: str) -> IrrSource:
        """Parse one IRR's dump text and register it."""
        registry = get_registry()
        with registry.span("parse"), registry.span(name):
            ir, errors = parse_dump_text(text, source=name)
        source = IrrSource(name=name, ir=ir, errors=errors, raw_bytes=len(text))
        self.sources[name] = source
        _record_source(source)
        return source

    def add_file(self, name: str, path: str | Path) -> IrrSource:
        """Parse one IRR's dump file and register it."""
        registry = get_registry()
        with registry.span("parse"), registry.span(name):
            ir, errors = parse_dump_file(path, source=name)
        source = IrrSource(
            name=name, ir=ir, errors=errors, raw_bytes=Path(path).stat().st_size
        )
        self.sources[name] = source
        _record_source(source)
        return source

    def merged(self) -> Ir:
        """The priority-merged IR across all registered IRRs."""
        return merge_irs({name: src.ir for name, src in self.sources.items()}, self.priority)

    def all_errors(self) -> ErrorCollector:
        """Every parse issue across all IRRs, concatenated."""
        combined = ErrorCollector()
        for source in self.sources.values():
            combined.extend(source.errors)
        return combined

    def table1(self) -> list[tuple[str, dict[str, int]]]:
        """Per-IRR rows in priority order, plus a ``Total`` row."""
        order = [name for name in self.priority if name in self.sources]
        order += sorted(name for name in self.sources if name not in self.priority)
        rows = [(name, self.sources[name].table1_row()) for name in order]
        total = {
            key: sum(row[key] for _, row in rows)
            for key in ("size_bytes", "aut-num", "route", "import", "export")
        }
        rows.append(("Total", total))
        return rows


def parse_registry_dir(directory: str | Path) -> Registry:
    """Parse every ``*.db`` / ``*.db.gz`` dump in a directory into a Registry.

    When both the plain and the gzipped form of one IRR are present, the
    plain file wins (it is parsed last under the same name).
    """
    registry = Registry()
    directory = Path(directory)
    paths = sorted(directory.glob("*.db.gz")) + sorted(directory.glob("*.db"))
    for path in paths:
        name = path.name.removesuffix(".gz").removesuffix(".db").upper()
        registry.add_file(name, path)
    return registry
