"""IRR-based route-origin validation: the prior-work baseline.

The studies closest to the paper "combine RPSL and BGP dumps to verify
route origins ... and are limited to binary validation" (Section 6).
This module implements that baseline — an RPKI-ROV-shaped check against
*route* objects instead of ROAs — so the benchmarks can quantify what
full-path policy verification adds over it:

* **valid** — a route object registers exactly ⟨prefix, origin⟩;
* **valid-covering** — a less-specific route object of the same origin
  covers the prefix (IRR practice registers aggregates);
* **invalid-origin** — the prefix (or a covering prefix) is registered,
  but only with *other* origins — the hijack-shaped signal;
* **unknown** — nothing registered covers the prefix.

Origin validation sees only the first AS of the path: a leak with a
legitimate origin is *valid* here while path verification flags it.
"""

from __future__ import annotations

from collections import Counter
from enum import Enum
from typing import Iterable

from repro.bgp.table import RouteEntry
from repro.core.query import QueryEngine
from repro.ir.model import Ir
from repro.net.prefix import Prefix

__all__ = ["OriginStatus", "OriginValidator"]


class OriginStatus(Enum):
    """The four binary-validation outcomes, best first."""

    VALID = "valid"
    VALID_COVERING = "valid-covering"
    INVALID_ORIGIN = "invalid-origin"
    UNKNOWN = "unknown"


class OriginValidator:
    """Validates ⟨prefix, origin⟩ pairs against registered route objects."""

    def __init__(self, ir: Ir, query: QueryEngine | None = None):
        self.query = query if query is not None else QueryEngine(ir)

    def validate(self, prefix: Prefix, origin: int) -> OriginStatus:
        """Classify one ⟨prefix, origin⟩ pair.

        One trie walk collects every registered covering prefix (exact
        included); two passes over that short list rank the outcome.
        """
        covering = self.query.routes.covering_origins(
            prefix.version, prefix.network, prefix.length
        )
        if not covering:
            return OriginStatus.UNKNOWN
        announced = prefix.length
        for length, origins in covering:
            if length == announced and origin in origins:
                return OriginStatus.VALID
        for length, origins in covering:
            if length != announced and origin in origins:
                return OriginStatus.VALID_COVERING
        return OriginStatus.INVALID_ORIGIN

    def validate_entry(self, entry: RouteEntry) -> OriginStatus:
        """Classify one observed route by its origin AS."""
        return self.validate(entry.prefix, entry.origin)

    def census(self, entries: Iterable[RouteEntry]) -> Counter:
        """Status counts over a route table."""
        counts: Counter = Counter()
        for entry in entries:
            counts[self.validate_entry(entry)] += 1
        return counts
