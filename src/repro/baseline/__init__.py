"""Baselines the paper compares against (a BGPq4-class resolver)."""

from repro.baseline.bgpq4 import (
    Bgpq4Resolver,
    bgpq4_skip_census,
    is_filter_compatible,
    is_rule_compatible,
)

__all__ = [
    "Bgpq4Resolver",
    "bgpq4_skip_census",
    "is_filter_compatible",
    "is_rule_compatible",
]
