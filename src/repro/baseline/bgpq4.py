"""A BGPq4-class baseline: single-term resolution only.

BGPq4 [Snarskii] generates router prefix filters from a *single* RPSL
object name (ASN, as-set, route-set).  Per the paper's tests, it does not
support filter-sets, AS-path regexes, BGP communities, composite filters
(AND/OR/NOT), or Structured Policies (REFINE/EXCEPT).  This module
reimplements that capability envelope:

* :func:`is_rule_compatible` — the classifier behind Figure 1's second
  curve and the Section 5 skip comparison (21,463 rules for BGPq4 vs 114
  for RPSLyzer);
* :class:`Bgpq4Resolver` — ``bgpq4 -4/-6``-style prefix-list generation
  from an object name, including router-config rendering.
"""

from __future__ import annotations

from repro.core.query import QueryEngine
from repro.ir.model import Ir
from repro.net.prefix import Prefix, RangeOpKind, aggregate_prefixes
from repro.rpsl.filter import (
    Filter,
    FilterAny,
    FilterAsn,
    FilterAsSet,
    FilterPeerAs,
    FilterPrefixSet,
    FilterRouteSet,
)
from repro.rpsl.names import NameKind, classify_name
from repro.rpsl.policy import PolicyRule, PolicyTerm
from repro.rpsl.walk import iter_policy_factors

__all__ = [
    "is_filter_compatible",
    "is_rule_compatible",
    "bgpq4_skip_census",
    "Bgpq4Resolver",
]


def is_filter_compatible(node: Filter) -> bool:
    """Whether a BGPq4-class tool can resolve this filter.

    Compatible filters are a single term: ``ANY``, ``PeerAS``, an ASN, an
    as-set, a route-set, or an inline prefix set.  Everything else —
    composites, NOT, regexes, communities, filter-sets — is not.
    """
    return isinstance(
        node,
        (FilterAny, FilterPeerAs, FilterAsn, FilterAsSet, FilterRouteSet, FilterPrefixSet),
    )


def is_rule_compatible(rule: PolicyRule) -> bool:
    """Whether every part of the rule is within BGPq4's envelope.

    Structured Policies (EXCEPT/REFINE) are out; each factor's filter must
    be a compatible single term.
    """
    if not isinstance(rule.expr, PolicyTerm):
        return False
    return all(
        is_filter_compatible(factor.filter) for factor in iter_policy_factors(rule.expr)
    )


def bgpq4_skip_census(ir: Ir) -> dict[str, int]:
    """Rules BGPq4 cannot handle vs the total (the Section 5 comparison)."""
    total = 0
    incompatible = 0
    for aut_num in ir.aut_nums.values():
        total += len(aut_num.bad_rules)
        incompatible += len(aut_num.bad_rules)
        for rule in (*aut_num.imports, *aut_num.exports):
            total += 1
            if not is_rule_compatible(rule):
                incompatible += 1
    return {"total": total, "skipped": incompatible}


class Bgpq4Resolver:
    """``bgpq4``-style prefix-list generation from one object name."""

    def __init__(self, ir: Ir, query: QueryEngine | None = None):
        self.ir = ir
        self.query = query if query is not None else QueryEngine(ir)

    def resolve(
        self, name: str, version: int = 4, aggregate: bool = False
    ) -> list[Prefix]:
        """The sorted prefix list for an ASN, as-set, or route-set name.

        ``aggregate`` merges contained and sibling prefixes first, like
        ``bgpq4 -A``.  Raises ``ValueError`` for names BGPq4 would reject
        (filter-sets, keywords, malformed names).
        """
        kind = classify_name(name)
        if kind is NameKind.ASN:
            prefixes = self._asn_prefixes(int(name.strip()[2:]))
        elif kind is NameKind.AS_SET:
            resolution = self.query.flatten_as_set(name.upper())
            prefixes = set()
            for asn in resolution.members:
                prefixes.update(self._asn_prefixes(asn))
        elif kind is NameKind.ROUTE_SET:
            prefixes = self._route_set_prefixes(name.upper())
        else:
            raise ValueError(f"bgpq4 cannot resolve {name!r}")
        selected = sorted(p for p in prefixes if p.version == version)
        if aggregate:
            return aggregate_prefixes(selected)
        return selected

    def _asn_prefixes(self, asn: int) -> set[Prefix]:
        # One bisect + span read on the trie backend; no full-table
        # reconstruction (query.origin_prefixes) for a single ASN.
        return {Prefix(*key) for key in self.query.routes.origin_keys(asn)}

    def _route_set_prefixes(self, name: str) -> set[Prefix]:
        resolution = self.query.resolve_route_set(name)
        prefixes: set[Prefix] = set()
        for key, ops in resolution.index.entries.items():
            # bgpq4 expands plain members; range operators are expanded to
            # the declared prefix itself (aggregation is left to the router).
            if any(op.kind is not RangeOpKind.MINUS for op in ops):
                prefixes.add(Prefix(*key))
        for asn, _ in resolution.asn_members:
            prefixes.update(self._asn_prefixes(asn))
        for set_name, _ in resolution.as_set_members:
            for asn in self.query.flatten_as_set(set_name).members:
                prefixes.update(self._asn_prefixes(asn))
        return prefixes

    def render_prefix_list(
        self, name: str, version: int = 4, style: str = "plain", aggregate: bool = False
    ) -> str:
        """Render a prefix filter like ``bgpq4`` output.

        ``style`` is ``"plain"`` (one prefix per line), ``"junos"`` (a
        Juniper prefix-list), or ``"cisco"`` (an ip prefix-list);
        ``aggregate`` matches ``bgpq4 -A``.
        """
        prefixes = self.resolve(name, version, aggregate)
        label = name.upper().replace(":", "-")
        if style == "plain":
            return "\n".join(str(prefix) for prefix in prefixes)
        if style == "junos":
            body = "\n".join(f"    {prefix};" for prefix in prefixes)
            return (
                "policy-options {\nreplace:\n"
                f"  prefix-list {label} {{\n{body}\n  }}\n}}"
            )
        if style == "cisco":
            lines = [f"no ip prefix-list {label}"]
            lines += [
                f"ip prefix-list {label} permit {prefix}" for prefix in prefixes
            ]
            return "\n".join(lines)
        raise ValueError(f"unknown style {style!r}")
